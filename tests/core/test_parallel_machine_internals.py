"""Unit tests for ParallelConsensusMachine internals.

The integration tests cover end-to-end behaviour; these pin the
machinery the total-ordering layer depends on: wire-tag namespacing,
the phase cap, join-window arithmetic, and result bookkeeping.
"""

from repro.core.parallel_consensus import (
    ConsensusInstance,
    ParallelConsensus,
    ParallelConsensusMachine,
)
from repro.types import BOTTOM

from tests.conftest import run_quick


class TestNamespacing:
    def test_bare_tags_without_base(self):
        machine = ParallelConsensusMachine(start_round=1)
        assert machine._wire_tag("x") == "x"
        assert machine._inner_id("x") == "x"
        assert machine._inner_id(None) is None

    def test_tuple_tags_with_base(self):
        machine = ParallelConsensusMachine(
            start_round=1, base_tag=("to", 7)
        )
        assert machine._wire_tag("u1") == (("to", 7), "u1")
        assert machine._inner_id((("to", 7), "u1")) == "u1"

    def test_foreign_namespace_rejected(self):
        machine = ParallelConsensusMachine(
            start_round=1, base_tag=("to", 7)
        )
        assert machine._inner_id((("to", 8), "u1")) is None
        assert machine._inner_id("bare") is None
        assert machine._inner_id(("to", 7)) is None

    def test_two_machines_do_not_cross_talk(self):
        a = ParallelConsensusMachine(start_round=1, base_tag=("to", 1))
        b = ParallelConsensusMachine(start_round=1, base_tag=("to", 2))
        assert a._inner_id(b._wire_tag("u")) is None


class TestPhaseCap:
    def test_cap_formula(self):
        machine = ParallelConsensusMachine(
            start_round=1, membership=frozenset(range(9))
        )
        assert machine.phase_cap == 9 // 2 + 3

    def test_cap_exceeds_legitimate_phase_budget(self):
        # legitimate instances need <= f + 2 phases; f < n_v/2
        for n_v in range(4, 40):
            f_max = (n_v - 1) // 3
            assert n_v // 2 + 3 > f_max + 2

    def test_cap_fires_and_retires_instance(self):
        from repro.sim.inbox import Inbox
        from repro.sim.message import Outbox
        from repro.sim.node import NodeApi

        instance = ConsensusInstance("ghost", start_round=3, value=BOTTOM)
        membership = frozenset(range(5))
        api = NodeApi(
            node_id=0,
            round_no=3,
            known_contacts=membership,
            outbox=Outbox(),
        )
        # march the instance through empty rounds until past the cap
        round_no = 3
        for _ in range(200):
            api = NodeApi(
                node_id=0,
                round_no=round_no,
                known_contacts=membership,
                outbox=Outbox(),
            )
            instance.on_round(
                api, Inbox(), membership, 5, [0, 1, 2], phase_cap=4
            )
            if instance.terminated:
                break
            round_no += 1
        assert instance.terminated
        assert not instance.result.has_output


class TestWindowsAndResults:
    def test_join_window_arithmetic(self):
        machine = ParallelConsensusMachine(start_round=10)
        assert not machine.join_window_closed(17)
        assert machine.join_window_closed(18)

    def test_idle_transitions(self):
        machine = ParallelConsensusMachine(start_round=1)
        assert machine.idle()
        machine.submit("x", 1)
        assert not machine.idle()

    def test_results_include_bottom_and_outputs(self):
        result = run_quick(
            correct=4,
            seed=2,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {"real": 5} if i == 0 else {}
            ),
        )
        protocol = result.protocols[result.correct_ids[1]]
        assert "real" in protocol.results
        terminal = protocol.results["real"]
        # agreement: the pair was input at only one node, so whichever
        # way it went, every node's terminal record matches
        for node in result.correct_ids:
            other = result.protocols[node].results["real"]
            assert other.has_output == terminal.has_output

    def test_output_pairs_cached_until_new_result(self):
        from repro.core.parallel_consensus import InstanceResult

        machine = ParallelConsensusMachine(start_round=1)
        machine._results["a"] = InstanceResult("a", 5, round=9)
        first = machine.output_pairs()
        assert first == (("a", 5),)
        # Repeated calls hand back the very same tuple object: total
        # ordering polls every finalized machine each round.
        assert machine.output_pairs() is first
        # A new terminal result invalidates the cache the same way
        # _run_instances does when an instance terminates.
        machine._results["b"] = InstanceResult("b", 7, round=11)
        machine._output_cache = None
        second = machine.output_pairs()
        assert second == (("a", 5), ("b", 7))
        assert machine.output_pairs() is second

    def test_terminating_instance_refreshes_output_pairs(self):
        result = run_quick(
            correct=4,
            seed=5,
            protocol_factory=lambda nid, i: ParallelConsensus({"k": 3}),
        )
        machine = result.protocols[result.correct_ids[0]].machine
        pairs = machine.output_pairs()
        assert pairs == (("k", 3),)
        # The run terminated "k" through _run_instances, so the cache
        # was rebuilt after the result landed — and is now stable.
        assert machine.output_pairs() is machine.output_pairs()

    def test_resubmitting_finished_instance_is_ignored(self):
        result = run_quick(
            correct=4,
            seed=3,
            protocol_factory=lambda nid, i: ParallelConsensus({"k": 1}),
        )
        protocol = result.protocols[result.correct_ids[0]]
        machine = protocol.machine
        machine.submit("k", 99)
        machine._start_pending(_FakeApi())
        assert "k" not in machine.instances  # already in results


class _FakeApi:
    node_id = 0
    round = 50

    def emit(self, *args, **kwargs):
        pass

    def broadcast(self, *args, **kwargs):
        pass
