"""Appendix extensions: terminating RB, renaming, binary king consensus."""

import pytest

from repro.adversary import (
    EquivocatorStrategy,
    MembershipLiarStrategy,
    QuorumSplitterStrategy,
    SilentStrategy,
)
from repro.adversary.base import ByzantineStrategy
from repro.core.binary_consensus import BinaryKingConsensus
from repro.core.renaming import ByzantineRenaming
from repro.core.terminating_broadcast import (
    NO_MESSAGE,
    TerminatingReliableBroadcast,
)

from tests.conftest import predict_ids, run_quick


class TestTerminatingReliableBroadcast:
    def test_correct_sender_delivers(self):
        correct_ids, _ = predict_ids(0, 7, 2)
        sender = correct_ids[0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=0,
            protocol_factory=lambda nid, i: TerminatingReliableBroadcast(
                sender, "payload" if nid == sender else None
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed
        assert result.distinct_outputs == {"payload"}
        protocol = result.protocols[result.correct_ids[1]]
        assert protocol.delivered

    def test_silent_byzantine_sender_agrees_on_silence(self):
        _, byz_ids = predict_ids(1, 7, 2)
        sender = byz_ids[0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=1,
            protocol_factory=lambda nid, i: TerminatingReliableBroadcast(
                sender, None
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed
        assert result.distinct_outputs == {NO_MESSAGE}
        assert not result.protocols[result.correct_ids[0]].delivered

    @pytest.mark.parametrize("seed", range(4))
    def test_equivocating_sender_still_agrees(self, seed):
        class SplitMessageSender(ByzantineStrategy):
            def on_round(self, view):
                sends = [self.broadcast("init")] if view.round == 1 else []
                if view.round == 1:
                    ordered = sorted(view.correct_nodes)
                    half = len(ordered) // 2
                    sends.extend(
                        self.to(d, "msg", "left") for d in ordered[:half]
                    )
                    sends.extend(
                        self.to(d, "msg", "right") for d in ordered[half:]
                    )
                return sends

        _, byz_ids = predict_ids(seed, 7, 2)
        sender = byz_ids[0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: TerminatingReliableBroadcast(
                sender, None
            ),
            strategy_factory=lambda nid, i: SplitMessageSender(),
        )
        # agreement on *something*: one of the two messages or silence
        assert result.agreed, result.outputs
        assert result.distinct_outputs <= {"left", "right", NO_MESSAGE}

    def test_terminates_in_of_rounds(self):
        correct_ids, _ = predict_ids(2, 7, 2)
        sender = correct_ids[0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=2,
            protocol_factory=lambda nid, i: TerminatingReliableBroadcast(
                sender, "x" if nid == sender else None
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.rounds <= 2 + 5 * 4  # comfortably O(f) phases


class TestRenaming:
    @pytest.mark.parametrize("seed", range(5))
    def test_assignment_identical_across_nodes(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=lambda nid, i: ByzantineRenaming(),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=80,
        )
        assert result.agreed, result.outputs

    def test_all_correct_ids_included(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=0,
            protocol_factory=lambda nid, i: ByzantineRenaming(),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=80,
        )
        (assignment,) = result.distinct_outputs
        assert set(result.correct_ids) <= set(assignment)

    def test_new_names_are_compact_ranks(self):
        result = run_quick(
            correct=5,
            seed=1,
            protocol_factory=lambda nid, i: ByzantineRenaming(),
            max_rounds=60,
        )
        names = sorted(
            result.protocols[n].new_name for n in result.correct_ids
        )
        assert names == [1, 2, 3, 4, 5]

    def test_phantom_ids_do_not_split_assignment(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=2,
            rushing=True,
            protocol_factory=lambda nid, i: ByzantineRenaming(),
            strategy_factory=lambda nid, i: MembershipLiarStrategy(
                phantoms=2
            ),
            max_rounds=120,
        )
        assert result.agreed, result.outputs

    def test_terminates_within_of_bound(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=3,
            protocol_factory=lambda nid, i: ByzantineRenaming(),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=80,
        )
        # appendix: <= 4f + 3 main-loop rounds plus init and spread
        assert result.rounds <= 2 + (4 * 2 + 3) + 4


class TestBinaryKing:
    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_mixed_inputs(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: BinaryKingConsensus(i % 2),
            strategy_factory=lambda nid, i: QuorumSplitterStrategy(
                BinaryKingConsensus(0)
            ),
            max_rounds=300,
        )
        assert result.agreed, result.outputs

    @pytest.mark.parametrize("value", [0, 1])
    def test_validity_unanimous(self, value):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=1,
            rushing=True,
            protocol_factory=lambda nid, i: BinaryKingConsensus(value),
            strategy_factory=lambda nid, i: EquivocatorStrategy(
                BinaryKingConsensus(1 - value)
            ),
            max_rounds=300,
        )
        assert result.agreed
        assert result.distinct_outputs == {value}

    def test_rejects_non_binary_input(self):
        with pytest.raises(ValueError):
            BinaryKingConsensus(2)

    def test_terminates_via_rotor_in_linear_rounds(self):
        result = run_quick(
            correct=9,
            byzantine=2,
            seed=2,
            protocol_factory=lambda nid, i: BinaryKingConsensus(i % 2),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=300,
        )
        n = 11
        # rotor repeats after at most |C| + 1 <= n + 1 phases of 5 rounds
        assert result.rounds <= 2 + 5 * (n + 2)
