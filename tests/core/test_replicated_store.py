"""The replicated key-value store (SMR on Algorithm 6)."""

from repro.adversary import SilentStrategy
from repro.core.replicated_store import ReplicatedKVStore
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


def cluster(replicas=5, byzantine=1, seed=0, joiner_round=None):
    rng = make_rng(seed)
    total = replicas + byzantine + (1 if joiner_round else 0)
    ids = sparse_ids(total, rng)
    replica_ids = ids[:replicas]
    byz_ids = ids[replicas: replicas + byzantine]

    membership = MembershipSchedule()
    joiner_id = None
    if joiner_round:
        joiner_id = ids[-1]
        membership.join(
            joiner_round, joiner_id, lambda: ReplicatedKVStore(seed=False)
        )

    net = SyncNetwork(seed=seed, membership=membership)
    stores = {}
    for node_id in replica_ids:
        store = ReplicatedKVStore()
        stores[node_id] = store
        net.add_correct(node_id, store)
    for node_id in byz_ids:
        net.add_byzantine(node_id, SilentStrategy())
    return net, stores, joiner_id


class TestBasicReplication:
    def test_write_visible_everywhere(self):
        net, stores, _ = cluster()
        writer = next(iter(stores.values()))
        writer.submit_set("color", "blue")
        net.run(40, until_all_halted=False)
        for store in stores.values():
            assert store.get("color") == "blue"

    def test_states_identical(self):
        net, stores, _ = cluster()
        for index, store in enumerate(stores.values()):
            store.submit_set(f"k{index}", index)
        net.run(45, until_all_halted=False)
        states = [store.state for store in stores.values()]
        assert all(state == states[0] for state in states)
        assert len(states[0]) == 5

    def test_delete(self):
        net, stores, _ = cluster()
        writer = next(iter(stores.values()))
        writer.submit_set("temp", 1)
        writer.submit_delete("temp")
        net.run(45, until_all_halted=False)
        for store in stores.values():
            assert store.get("temp") is None

    def test_get_default(self):
        store = ReplicatedKVStore()
        assert store.get("missing", "fallback") == "fallback"


class TestConflictResolution:
    def test_concurrent_writes_resolve_identically(self):
        net, stores, _ = cluster(seed=3)
        # every replica writes the same key in the same round
        for index, store in enumerate(stores.values()):
            store.submit_set("winner", index)
        net.run(45, until_all_halted=False)
        values = {store.get("winner") for store in stores.values()}
        assert len(values) == 1  # one deterministic winner everywhere

    def test_applied_logs_identical(self):
        net, stores, _ = cluster(seed=4)
        items = list(stores.values())
        items[0].submit_set("a", 1)
        items[1].submit_set("b", 2)
        items[2].submit_set("a", 3)
        net.run(45, until_all_halted=False)
        logs = [store.applied_log for store in stores.values()]
        assert all(log == logs[0] for log in logs)
        assert len(logs[0]) == 3


class TestDynamicCluster:
    def test_joiner_catches_up_with_future_state(self):
        net, stores, joiner_id = cluster(seed=5, joiner_round=12)
        # let the joiner complete its handshake first, then write
        net.run(18, until_all_halted=False)
        writer = next(iter(stores.values()))
        for step in range(6):
            writer.submit_set(f"key{step}", step)
        net.run(62, until_all_halted=False)
        joiner = net.protocols()[joiner_id]
        veteran = next(iter(stores.values()))
        # the joiner's state is a (possibly earlier) snapshot of the
        # veteran's history; everything it has matches
        for key, value in joiner.state.items():
            assert veteran.state[key] == value
        assert joiner.state, "joiner never applied anything"

    def test_joiner_writes_accepted(self):
        net, stores, joiner_id = cluster(seed=6, joiner_round=10)
        net.run(25, until_all_halted=False)
        joiner = net.protocols()[joiner_id]
        joiner.submit_set("from-joiner", 99)
        net.run(40, until_all_halted=False)
        for store in stores.values():
            assert store.get("from-joiner") == 99
