"""Reliable broadcast (Algorithm 1): correctness, unforgeability, relay."""

import pytest

from repro.adversary import (
    EchoForgerStrategy,
    MembershipLiarStrategy,
    SilentStrategy,
)
from repro.adversary.base import ByzantineStrategy
from repro.analysis.checkers import check_reliable_broadcast
from repro.core.reliable_broadcast import ReliableBroadcast

from tests.conftest import predict_ids, run_quick


def rb_run(
    correct=7,
    byzantine=2,
    seed=0,
    strategy_factory=None,
    sender_is_byzantine=False,
    message="m",
    rounds=8,
    rushing=False,
):
    correct_ids, byz_ids = predict_ids(seed, correct, byzantine)
    sender = byz_ids[0] if sender_is_byzantine else correct_ids[0]
    result = run_quick(
        correct=correct,
        byzantine=byzantine,
        seed=seed,
        protocol_factory=lambda nid, i: ReliableBroadcast(
            sender, message if nid == sender else None
        ),
        strategy_factory=strategy_factory
        or (lambda nid, i: SilentStrategy()),
        max_rounds=rounds,
        until_all_halted=False,
        rushing=rushing,
    )
    return result, sender


class TestCorrectness:
    def test_all_accept_by_round_three(self):
        result, sender = rb_run()
        for node in result.correct_ids:
            protocol = result.protocols[node]
            assert protocol.acceptance_round("m") == 3

    @pytest.mark.parametrize("seed", range(5))
    def test_correctness_across_seeds(self, seed):
        result, sender = rb_run(seed=seed)
        report = check_reliable_broadcast(result, sender, "m", True)
        assert report.ok, report.violations

    def test_works_at_minimum_population(self):
        result, sender = rb_run(correct=3, byzantine=0)
        assert all(
            p.has_accepted("m") for p in result.protocols.values()
        )

    def test_works_at_exact_resiliency_bound(self):
        # n = 3f + 1 is the tightest legal configuration.
        result, sender = rb_run(correct=9, byzantine=4, seed=2)
        report = check_reliable_broadcast(result, sender, "m", True)
        assert report.ok, report.violations


class TestUnforgeability:
    @pytest.mark.parametrize("seed", range(5))
    def test_forged_echoes_never_accepted(self, seed):
        # Byzantine nodes echo a message the correct sender never sent.
        correct_ids, _ = predict_ids(seed, 7, 2)
        victim = correct_ids[0]

        result, sender = rb_run(
            seed=seed,
            strategy_factory=lambda nid, i: EchoForgerStrategy(
                forged_payload=("forged-m", victim)
            ),
            rushing=True,
        )
        for node in result.correct_ids:
            protocol = result.protocols[node]
            assert ("forged-m", victim) not in protocol.accepted

    def test_byzantine_sender_cannot_split_acceptance(self):
        # A Byzantine sender sends different payloads to different halves;
        # neither may be accepted by only *some* correct nodes (relay).
        class SplitSender(ByzantineStrategy):
            def on_round(self, view):
                if view.round != 1:
                    return ()
                ordered = sorted(view.correct_nodes)
                half = len(ordered) // 2
                return [
                    *(self.to(d, "msg", "left") for d in ordered[:half]),
                    *(self.to(d, "msg", "right") for d in ordered[half:]),
                ]

        correct_ids, byz_ids = predict_ids(3, 7, 2)
        sender = byz_ids[0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=3,
            protocol_factory=lambda nid, i: ReliableBroadcast(sender, None),
            strategy_factory=lambda nid, i: SplitSender(),
            max_rounds=8,
            until_all_halted=False,
        )
        for payload in ("left", "right"):
            acceptors = [
                n
                for n in result.correct_ids
                if (payload, sender) in result.protocols[n].accepted
            ]
            assert acceptors == [] or len(acceptors) == len(
                result.correct_ids
            )


class TestRelay:
    @pytest.mark.parametrize("seed", range(5))
    def test_acceptance_rounds_within_one(self, seed):
        # A Byzantine sender reveals the message to a single correct node;
        # echo quorums then spread it (or nothing is ever accepted).
        class WhisperSender(ByzantineStrategy):
            def on_round(self, view):
                if view.round == 1:
                    target = min(view.correct_nodes)
                    return [self.to(target, "msg", "w")]
                return ()

        correct_ids, byz_ids = predict_ids(seed, 7, 2)
        sender = byz_ids[0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=lambda nid, i: ReliableBroadcast(sender, None),
            strategy_factory=lambda nid, i: WhisperSender(),
            max_rounds=10,
            until_all_halted=False,
        )
        rounds = [
            result.protocols[n].accepted.get(("w", sender))
            for n in result.correct_ids
        ]
        accepted = [r for r in rounds if r is not None]
        assert accepted == [] or (
            len(accepted) == len(rounds)
            and max(accepted) - min(accepted) <= 1
        )


class TestAdversaryMatrix:
    @pytest.mark.parametrize(
        "strategy_builder",
        [
            lambda: SilentStrategy(),
            lambda: EchoForgerStrategy(),
            lambda: MembershipLiarStrategy(),
        ],
        ids=["silent", "echo-forger", "membership-liar"],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_all_properties_hold(self, strategy_builder, seed):
        result, sender = rb_run(
            seed=seed,
            strategy_factory=lambda nid, i: strategy_builder(),
            rushing=True,
        )
        report = check_reliable_broadcast(result, sender, "m", True)
        assert report.ok, report.violations


class TestProtocolShape:
    def test_never_terminates(self):
        result, _ = rb_run(rounds=6)
        assert all(not p.halted for p in result.protocols.values())

    def test_has_accepted_api(self):
        result, sender = rb_run()
        protocol = result.protocols[result.correct_ids[1]]
        assert protocol.has_accepted()
        assert protocol.has_accepted("m")
        assert not protocol.has_accepted("other")
        assert protocol.acceptance_round("other") is None
