"""Adversarial tests for total ordering: handshake lies, event equivocation."""

import pytest

from repro.adversary.base import ByzantineStrategy
from repro.analysis.checkers import check_chain_prefix
from repro.core.total_order import TotalOrderNode, events_from_dict
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


class AckLiar(ByzantineStrategy):
    """Answers every `present` with a wildly wrong round number.

    The joiner adopts the *majority* ack value; with g > 2f the correct
    replies always outnumber the lies, so the handshake must survive.
    """

    def __init__(self, lie: int = 9999):
        self._lie = lie
        self._pending: list[int] = []

    def on_round(self, view):
        sends = [self.to(dest, "ack", self._lie) for dest in self._pending]
        self._pending = [
            m.sender for m in view.inbox.filter("present")
        ]
        return sends


class EventEquivocator(ByzantineStrategy):
    """Announces itself, then broadcasts *different* events to different
    halves of the network with the correct round stamps.

    Parallel consensus must resolve each of its per-round submissions to
    one agreed value (or none) — never to different values at different
    nodes."""

    def on_round(self, view):
        sends = []
        if view.round == 1:
            sends.append(self.broadcast("present"))
        # stamp r-2: events broadcast in local round r arrive at r+1 and
        # must carry the witnessing round (receiver checks r_recv - 1).
        # Seeded nodes' local round == global round - 2.
        stamp = view.round - 2
        if stamp >= 1 and view.round % 3 == 0:
            ordered = sorted(view.correct_nodes)
            half = len(ordered) // 2
            sends.extend(
                self.to(d, "event", (f"evil-A@{stamp}", stamp))
                for d in ordered[:half]
            )
            sends.extend(
                self.to(d, "event", (f"evil-B@{stamp}", stamp))
                for d in ordered[half:]
            )
        return sends


def run_network(strategy_builder, seed=0, rounds=80, joiner=False):
    rng = make_rng(seed)
    ids = sparse_ids(10, rng)
    correct_ids, byz_ids = ids[:7], ids[7:9]
    joiner_id = ids[9] if joiner else None

    membership = MembershipSchedule()
    if joiner:
        membership.join(
            16, joiner_id, lambda: TotalOrderNode(seed=False)
        )
    net = SyncNetwork(seed=seed, membership=membership, rushing=True)
    for index, node_id in enumerate(correct_ids):
        net.add_correct(
            node_id,
            TotalOrderNode(
                event_source=events_from_dict(
                    {r: f"e{index}@{r}" for r in range(2, 40, 6)}
                )
            ),
        )
    for node_id in byz_ids:
        net.add_byzantine(node_id, strategy_builder())
    net.run(rounds, until_all_halted=False)
    return net, correct_ids, joiner_id


class TestAckLiar:
    @pytest.mark.parametrize("seed", range(3))
    def test_joiner_survives_ack_lies(self, seed):
        net, correct_ids, joiner_id = run_network(
            AckLiar, seed=seed, joiner=True
        )
        joiner = net.protocols()[joiner_id]
        assert joiner.joined
        # the adopted round must be a real one (majority of correct
        # acks), not the lie
        assert joiner.local_round < 200
        chains = {
            nid: p.chain for nid, p in net.protocols().items()
        }
        assert check_chain_prefix(chains).ok

    def test_liar_acks_do_not_corrupt_veterans(self):
        net, correct_ids, _ = run_network(AckLiar, seed=5)
        chains = [net.protocols()[n].chain for n in correct_ids]
        assert all(c == chains[0] for c in chains)
        assert chains[0]  # events still finalize


class TestEventEquivocation:
    @pytest.mark.parametrize("seed", range(3))
    def test_equivocated_events_resolve_consistently(self, seed):
        net, correct_ids, _ = run_network(EventEquivocator, seed=seed)
        chains = [net.protocols()[n].chain for n in correct_ids]
        assert all(c == chains[0] for c in chains), "chains diverged"
        # whatever survived of the equivocated events, each (round,
        # byz-source) slot holds at most one value in the agreed chain
        slots = {}
        for round_no, source, event in chains[0]:
            assert slots.setdefault((round_no, source), event) == event

    def test_correct_events_unharmed(self):
        net, correct_ids, _ = run_network(EventEquivocator, seed=9)
        chain = net.protocols()[correct_ids[0]].chain
        agreed_events = {entry[2] for entry in chain}
        # every correct event submitted early enough to finalize is there
        for index in range(7):
            assert f"e{index}@2" in agreed_events


class TestFinalityInternals:
    def test_finality_formula_is_the_papers(self):
        node = TotalOrderNode()
        node.local_round = 30
        # fabricate a machine entry with |S| = 7: final iff
        # 2*(30 - r') > 5*7 + 4 = 39  <=>  r' < 30 - 19.5  <=>  r' <= 10
        class IdleMachine:
            @staticmethod
            def idle():
                return True

        node.machines[10] = (IdleMachine(), 7)
        node.machines[11] = (IdleMachine(), 7)
        assert node._is_final(10)
        assert not node._is_final(11)

    def test_non_idle_machine_never_final(self):
        node = TotalOrderNode()
        node.local_round = 100

        class BusyMachine:
            @staticmethod
            def idle():
                return False

        node.machines[1] = (BusyMachine(), 7)
        assert not node._is_final(1)
