"""Unit-level tests for EarlyConsensus internals (phase dispatch, the
substitution counting, frozen-membership filtering)."""

from repro.core.consensus import (
    INIT_ROUNDS,
    KIND_INPUT,
    KIND_PREFER,
    KIND_STRONGPREFER,
    PHASE_LENGTH,
    EarlyConsensus,
)
from repro.sim.inbox import Inbox
from repro.sim.message import Message, Outbox
from repro.sim.node import NodeApi


def api_for(node_id=1, round_no=3):
    return NodeApi(
        node_id=node_id,
        round_no=round_no,
        known_contacts=frozenset(range(100)),
        outbox=Outbox(),
    )


def primed_consensus(membership=(1, 2, 3, 4), x=0):
    protocol = EarlyConsensus(x)
    protocol.membership = frozenset(membership)
    protocol.n_v = len(membership)
    return protocol


class TestPhaseGeometry:
    def test_phase_round_mapping(self):
        # rounds 1-2 are init; rounds 3..7 are phase 1 rounds 1..5
        for round_no, expected in [(3, 1), (4, 2), (5, 3), (6, 4), (7, 5),
                                   (8, 1), (12, 5), (13, 1)]:
            rel = (round_no - INIT_ROUNDS - 1) % PHASE_LENGTH + 1
            assert rel == expected, round_no

    def test_phase_counter_increments_at_phase_round_one(self):
        # keep the other members visibly live (split inputs, no quorum)
        # so neither the fast path nor the substitution path decides
        protocol = primed_consensus(membership=(1, 2, 3, 4), x=0)

        def inbox_for(round_no):
            phase_round = (round_no - INIT_ROUNDS - 1) % PHASE_LENGTH + 1
            if phase_round == 2:  # inputs land: 2 vs 2 split
                return Inbox(
                    [
                        Message(1, KIND_INPUT, 0),
                        Message(2, KIND_INPUT, 0),
                        Message(3, KIND_INPUT, 1),
                        Message(4, KIND_INPUT, 1),
                    ]
                )
            return Inbox()

        for round_no in range(3, 13):
            protocol.on_round(api_for(round_no=round_no),
                              inbox_for(round_no))
        assert protocol.phase == 2
        assert not protocol.halted

    def test_substitution_lets_a_lone_survivor_decide(self):
        # With every member silent for a whole phase (presumed
        # terminated), the substitution mirrors the survivor's own value
        # into a full quorum and it decides alone — the intended
        # straggler semantics.
        protocol = primed_consensus()
        for round_no in range(3, 8):
            protocol.on_round(api_for(round_no=round_no), Inbox())
        assert protocol.halted
        assert protocol.output == 0


class TestSubstitutionCounting:
    def test_fill_applies_only_to_non_live_members(self):
        protocol = primed_consensus(membership=(1, 2, 3, 4, 5, 6, 7), x=1)
        protocol._last_sent[KIND_PREFER] = 1
        # members 2 and 3 broadcast this phase's input; 4..7 did not
        protocol._phase_live = frozenset({1, 2, 3})
        inbox = Inbox(
            [Message(2, KIND_PREFER, 0), Message(3, KIND_PREFER, 0)]
        )
        value, count = protocol._best(inbox, KIND_PREFER)
        # fills: members 4..7 (non-live, silent) mirror our own 1;
        # member 1 (ourselves, live) is not filled
        assert (value, count) == (1, 4)

    def test_live_but_silent_members_not_filled(self):
        protocol = primed_consensus(membership=(1, 2, 3, 4), x=1)
        protocol._last_sent[KIND_STRONGPREFER] = 1
        protocol._phase_live = frozenset({1, 2, 3, 4})  # all alive
        inbox = Inbox([Message(2, KIND_STRONGPREFER, 0)])
        value, count = protocol._best(inbox, KIND_STRONGPREFER)
        assert (value, count) == (0, 1)  # no phantom votes at all

    def test_input_counting_fills_any_silent_member(self):
        protocol = primed_consensus(membership=(1, 2, 3, 4), x=1)
        protocol._last_sent[KIND_INPUT] = 1
        inbox = Inbox([Message(2, KIND_INPUT, 1)])
        value, count = protocol._best(inbox, KIND_INPUT)
        # 2 real? no: one real (node 2) + fills for 1, 3, 4
        assert (value, count) == (1, 4)

    def test_substitution_disabled(self):
        protocol = EarlyConsensus(1, substitution=False)
        protocol.membership = frozenset({1, 2, 3, 4})
        protocol.n_v = 4
        protocol._last_sent[KIND_INPUT] = 1
        inbox = Inbox([Message(2, KIND_INPUT, 1)])
        assert protocol._best(inbox, KIND_INPUT) == (1, 1)

    def test_no_fill_without_own_send(self):
        protocol = primed_consensus()
        inbox = Inbox([Message(2, KIND_PREFER, 0)])
        # we never sent a prefer: nothing to mirror
        assert protocol._best(inbox, KIND_PREFER) == (0, 1)

    def test_layered_counting_matches_flat_rebuild(self):
        # _best now layers the substitution phantoms over the inbox's
        # existing index instead of re-indexing everything; the counted
        # result must be exactly what a from-scratch inbox would give,
        # including the deterministic tie-break.
        protocol = primed_consensus(membership=(1, 2, 3, 4, 5, 6), x=1)
        protocol._last_sent[KIND_PREFER] = 1
        protocol._phase_live = frozenset({1, 2})
        real = [
            Message(2, KIND_PREFER, 0),
            Message(3, KIND_PREFER, 1),
            Message(4, KIND_PREFER, 0),
        ]
        inbox = Inbox(real)
        inbox.best_payload(KIND_PREFER)  # prime the base index first
        phantoms = [
            Message(node, KIND_PREFER, 1) for node in (5, 6)
        ]
        flat = Inbox(real + phantoms).best_payload(KIND_PREFER)
        assert protocol._best(inbox, KIND_PREFER) == flat == (1, 3)
        # and the base inbox is untouched by the overlay
        assert inbox.best_payload(KIND_PREFER) == (0, 2)

    def test_merged_with_layers_instead_of_reindexing(self):
        inbox = Inbox([Message(2, KIND_PREFER, 0)])
        base_index = inbox.index
        merged = inbox.merged_with([Message(3, KIND_PREFER, 0)])
        assert merged.index._base is base_index
        assert merged.best_payload(KIND_PREFER) == (0, 2)


class TestFrozenMembership:
    def test_strangers_discarded(self):
        protocol = primed_consensus(membership=(1, 2, 3))
        inbox = Inbox(
            [
                Message(2, KIND_INPUT, 0),
                Message(99, KIND_INPUT, 0),  # not in the frozen view
            ]
        )
        restricted = protocol._restricted(inbox)
        assert restricted.senders() == {2}

    def test_all_members_means_same_inbox_object(self):
        # When no sender falls outside the frozen view, restriction is
        # the identity — the round's shared index stays shared.
        protocol = primed_consensus(membership=(1, 2, 3))
        inbox = Inbox([Message(2, KIND_INPUT, 0), Message(3, KIND_INPUT, 1)])
        assert protocol._restricted(inbox) is inbox

    def test_membership_frozen_from_round_two_inbox(self):
        protocol = EarlyConsensus(0)
        api = api_for(round_no=1)
        protocol.on_round(api, Inbox())
        api = api_for(round_no=2)
        protocol.on_round(
            api, Inbox([Message(5, "init"), Message(6, "junk")])
        )
        assert protocol.membership == frozenset({5, 6})
        assert protocol.n_v == 2
