"""Interactive consistency (the §12 composition)."""

import pytest

from repro.adversary import SilentStrategy
from repro.adversary.base import ByzantineStrategy
from repro.core.interactive_consistency import InteractiveConsistency

from tests.conftest import run_quick


class EquivocatingReporter(ByzantineStrategy):
    """Reports value 'A' to half the network and 'B' to the rest, then
    stays out of the consensus entirely."""

    def on_round(self, view):
        if view.round != 1:
            return ()
        ordered = sorted(view.all_nodes)
        half = len(ordered) // 2
        return [
            *(self.to(d, "report", "A") for d in ordered[:half]),
            *(self.to(d, "report", "B") for d in ordered[half:]),
        ]


class TestInteractiveConsistency:
    @pytest.mark.parametrize("seed", range(5))
    def test_vectors_identical_and_complete(self, seed):
        values = ["v0", "v1", "v2", "v3", "v4", "v5", "v6"]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=lambda nid, i: InteractiveConsistency(
                values[i]
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed, result.outputs
        vector = result.protocols[result.correct_ids[0]].vector
        # every correct node's value is present under its id
        for index, node in enumerate(result.correct_ids):
            assert vector[node] == values[index]

    @pytest.mark.parametrize("seed", range(5))
    def test_equivocating_reporter_resolved_consistently(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: InteractiveConsistency(i),
            strategy_factory=lambda nid, i: EquivocatingReporter(),
        )
        assert result.agreed, result.outputs
        vector = result.protocols[result.correct_ids[0]].vector
        for byz in result.byzantine_ids:
            # either one agreed value or absent — same everywhere since
            # result.agreed already held
            assert vector.get(byz) in ("A", "B", None)
        # all correct entries intact
        for index, node in enumerate(result.correct_ids):
            assert vector[node] == index

    def test_silent_byzantine_absent_from_vector(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=1,
            protocol_factory=lambda nid, i: InteractiveConsistency(i),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        vector = result.protocols[result.correct_ids[0]].vector
        assert set(vector) == set(result.correct_ids)

    def test_terminates_in_of_rounds(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=2,
            protocol_factory=lambda nid, i: InteractiveConsistency(i),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.rounds <= 2 + 5 * 4

    def test_vector_none_before_decision(self):
        protocol = InteractiveConsistency(1)
        assert protocol.vector is None
