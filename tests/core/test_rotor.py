"""Rotor-coordinator (Algorithm 2): good round, O(n) termination."""

import pytest

from repro.adversary import (
    CoordinatorUsurperStrategy,
    MembershipLiarStrategy,
    PresentOnlyStrategy,
    SilentStrategy,
)
from repro.analysis.checkers import check_rotor_good_round
from repro.core.rotor import RotorCoordinator

from tests.conftest import run_quick


def rotor_factory(nid, i):
    return RotorCoordinator(opinion=("op", i))


class TestTermination:
    @pytest.mark.parametrize("seed", range(5))
    def test_terminates_within_linear_rounds(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=rotor_factory,
            strategy_factory=lambda nid, i: PresentOnlyStrategy(),
            max_rounds=100,
        )
        n = 9
        # 2 init rounds + at most n+1 selection rounds
        assert result.rounds <= 2 * n + 3

    def test_all_correct_nodes_terminate(self):
        result = run_quick(
            correct=10,
            byzantine=3,
            seed=1,
            protocol_factory=rotor_factory,
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=100,
        )
        assert len(result.outputs) == 10

    def test_rounds_scale_linearly_with_n(self):
        rounds = []
        for correct in (4, 8, 16, 32):
            result = run_quick(
                correct=correct,
                protocol_factory=rotor_factory,
                max_rounds=3 * correct + 10,
            )
            rounds.append(result.rounds)
        # monotone growth, and roughly n + constant
        assert rounds == sorted(rounds)
        assert rounds[-1] <= 32 + 5


class TestGoodRound:
    @pytest.mark.parametrize("seed", range(5))
    def test_good_round_with_silent_adversary(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=rotor_factory,
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=100,
        )
        assert check_rotor_good_round(result).ok

    @pytest.mark.parametrize("seed", range(5))
    def test_good_round_with_usurper(self, seed):
        # The usurper participates honestly to become a candidate, then
        # equivocates its opinion; a good round must still occur.
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=rotor_factory,
            strategy_factory=lambda nid, i: CoordinatorUsurperStrategy(
                RotorCoordinator(opinion=("evil", i))
            ),
            max_rounds=100,
        )
        assert check_rotor_good_round(result).ok

    @pytest.mark.parametrize("seed", range(5))
    def test_good_round_with_membership_liar(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=rotor_factory,
            strategy_factory=lambda nid, i: MembershipLiarStrategy(),
            max_rounds=100,
        )
        assert check_rotor_good_round(result).ok


class TestSelections:
    def test_selection_order_common_across_correct_nodes(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=4,
            protocol_factory=rotor_factory,
            strategy_factory=lambda nid, i: PresentOnlyStrategy(),
            max_rounds=100,
        )
        orders = [
            tuple(result.protocols[n].selection_order)
            for n in result.correct_ids
        ]
        assert len(set(orders)) == 1

    def test_all_correct_ids_become_candidates(self):
        result = run_quick(
            correct=6,
            protocol_factory=rotor_factory,
            max_rounds=50,
        )
        for node in result.correct_ids:
            candidates = result.protocols[node].core.candidates
            assert set(result.correct_ids) <= set(candidates)

    def test_no_phantom_candidates_without_byzantine_help(self):
        result = run_quick(
            correct=6,
            protocol_factory=rotor_factory,
            max_rounds=50,
        )
        for node in result.correct_ids:
            candidates = set(result.protocols[node].core.candidates)
            assert candidates == set(result.correct_ids)

    def test_coordinators_selected_in_id_order(self):
        result = run_quick(
            correct=6,
            protocol_factory=rotor_factory,
            max_rounds=50,
        )
        order = result.protocols[result.correct_ids[0]].selection_order
        assert order == sorted(order)

    def test_opinions_accepted_from_each_correct_coordinator(self):
        result = run_quick(
            correct=5,
            protocol_factory=rotor_factory,
            max_rounds=50,
        )
        # with no Byzantine nodes every selection is a correct node whose
        # opinion everyone accepts the next round
        for node in result.correct_ids:
            protocol = result.protocols[node]
            coordinators = [c for _r, c, _o in protocol.accepted_opinions]
            assert set(coordinators) == set(result.correct_ids)
