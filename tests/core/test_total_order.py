"""Dynamic total ordering (Algorithm 6): chain-prefix and chain-growth."""

import pytest

from repro.adversary import RandomNoiseStrategy, SilentStrategy
from repro.analysis.checkers import check_chain_prefix
from repro.core.total_order import TotalOrderNode, events_from_dict
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids

from tests.conftest import run_quick


def static_run(
    correct=7,
    byzantine=2,
    seed=0,
    rounds=55,
    event_rounds=(2, 5, 9),
    strategy=SilentStrategy,
):
    def factory(nid, i):
        plan = {r: f"e{i}@{r}" for r in event_rounds}
        return TotalOrderNode(event_source=events_from_dict(plan))

    return run_quick(
        correct=correct,
        byzantine=byzantine,
        seed=seed,
        protocol_factory=factory,
        strategy_factory=lambda nid, i: strategy(),
        max_rounds=rounds,
        until_all_halted=False,
    )


class TestStaticPopulation:
    def test_chains_identical(self):
        result = static_run()
        chains = [result.protocols[n].chain for n in result.correct_ids]
        assert all(c == chains[0] for c in chains)

    def test_all_correct_events_ordered(self):
        result = static_run(event_rounds=(2,))
        chain = result.protocols[result.correct_ids[0]].chain
        events = {entry[2] for entry in chain}
        assert events == {f"e{i}@2" for i in range(7)}

    def test_chain_sorted_by_round_then_deterministic(self):
        result = static_run(event_rounds=(2, 5))
        chain = result.protocols[result.correct_ids[0]].chain
        rounds = [entry[0] for entry in chain]
        assert rounds == sorted(rounds)

    def test_chain_growth(self):
        # more simulated time, more finalized events
        short = static_run(rounds=45, event_rounds=tuple(range(2, 50, 3)))
        long = static_run(rounds=75, event_rounds=tuple(range(2, 50, 3)))
        len_short = len(
            short.protocols[short.correct_ids[0]].chain
        )
        len_long = len(long.protocols[long.correct_ids[0]].chain)
        assert len_long > len_short

    def test_prefix_checker_passes(self):
        result = static_run()
        chains = {
            n: result.protocols[n].chain for n in result.correct_ids
        }
        assert check_chain_prefix(chains).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_chains_identical_under_noise(self, seed):
        result = static_run(seed=seed, strategy=RandomNoiseStrategy)
        chains = [result.protocols[n].chain for n in result.correct_ids]
        assert all(c == chains[0] for c in chains)

    def test_finality_lags_by_budget(self):
        result = static_run(rounds=60)
        node = result.protocols[result.correct_ids[0]]
        # |S| = 7 (silent byz never announce): budget 5*7/2+2 = 19.5
        assert node.final_through >= node.local_round - 24


def dynamic_network(
    seed=7,
    seeds_correct=7,
    byzantine=2,
    joiners=2,
    join_rounds=(15, 22),
    leaver_round=None,
    total_rounds=100,
):
    rng = make_rng(seed)
    ids = sparse_ids(seeds_correct + byzantine + joiners, rng)
    seed_ids = ids[:seeds_correct]
    byz_ids = ids[seeds_correct: seeds_correct + byzantine]
    joiner_ids = ids[seeds_correct + byzantine:]

    membership = MembershipSchedule()
    for join_round, joiner in zip(join_rounds, joiner_ids):
        membership.join(
            join_round,
            joiner,
            lambda: TotalOrderNode(seed=False),
        )

    net = SyncNetwork(seed=seed, membership=membership)
    protocols = {}
    for index, node_id in enumerate(seed_ids):
        plan = {r: f"s{index}@{r}" for r in range(2, 60, 6)}
        protocol = TotalOrderNode(event_source=events_from_dict(plan))
        if leaver_round is not None and index == 0:
            protocol.leave_at = leaver_round
        protocols[node_id] = protocol
        net.add_correct(node_id, protocol)
    for node_id in byz_ids:
        net.add_byzantine(node_id, SilentStrategy())
    net.run(total_rounds, until_all_halted=False)
    return net, seed_ids, joiner_ids


class TestDynamicPopulation:
    def test_joiners_adopt_round_and_membership(self):
        net, seed_ids, joiner_ids = dynamic_network()
        for joiner in joiner_ids:
            protocol = net.protocols()[joiner]
            assert protocol.joined
            assert protocol.local_round is not None
            assert len(protocol.participants) >= len(seed_ids)

    def test_joiner_chain_is_suffix_of_veteran_chain(self):
        net, seed_ids, joiner_ids = dynamic_network()
        veteran_chain = net.protocols()[seed_ids[0]].chain
        for joiner in joiner_ids:
            chain = net.protocols()[joiner].chain
            assert chain, "joiner never finalized anything"
            first_round = chain[0][0]
            segment = [e for e in veteran_chain if e[0] >= first_round]
            assert segment[: len(chain)] == chain

    def test_prefix_checker_handles_joiners(self):
        net, seed_ids, joiner_ids = dynamic_network()
        chains = {
            nid: p.chain
            for nid, p in net.protocols().items()
        }
        assert check_chain_prefix(chains).ok

    def test_leaver_halts_after_draining(self):
        net, seed_ids, _ = dynamic_network(joiners=0, join_rounds=(),
                                           leaver_round=20)
        leaver = net.protocols()[seed_ids[0]]
        assert leaver.halted
        assert leaver.output is not None

    def test_leaver_chain_is_prefix(self):
        net, seed_ids, _ = dynamic_network(joiners=0, join_rounds=(),
                                           leaver_round=20)
        leaver_chain = list(net.protocols()[seed_ids[0]].output)
        survivor_chain = net.protocols()[seed_ids[1]].chain
        assert leaver_chain == survivor_chain[: len(leaver_chain)]

    def test_survivors_keep_ordering_after_leave(self):
        net, seed_ids, _ = dynamic_network(joiners=0, join_rounds=(),
                                           leaver_round=20)
        chains = [net.protocols()[n].chain for n in seed_ids[1:]]
        assert all(c == chains[0] for c in chains)

    def test_joiner_events_finalized_everywhere(self):
        rng = make_rng(3)
        ids = sparse_ids(9, rng)
        seed_ids, joiner = ids[:7], ids[7]
        membership = MembershipSchedule()
        membership.join(
            12,
            joiner,
            lambda: TotalOrderNode(
                event_source=events_from_dict({30: "joiner-event"}),
                seed=False,
            ),
        )
        net = SyncNetwork(seed=3, membership=membership)
        for node_id in seed_ids:
            net.add_correct(node_id, TotalOrderNode())
        net.run(90, until_all_halted=False)
        for node_id in seed_ids:
            chain = net.protocols()[node_id].chain
            assert any(e[2] == "joiner-event" for e in chain)
