"""Conformance: every theorem's checker over a configuration grid.

One test per (theorem, configuration) cell.  Where the adversary-matrix
test fixes the population and varies the attacker, this fixes a strong
attacker and varies the population shape — minimum sizes, tight
resiliency, lopsided correct/Byzantine ratios, and larger systems.
"""

import pytest

from repro.adversary import (
    EquivocatorStrategy,
    MembershipLiarStrategy,
    QuorumSplitterStrategy,
    ValueInjectorStrategy,
)
from repro.analysis.checkers import (
    check_agreement,
    check_reliable_broadcast,
    check_rotor_good_round,
    check_validity,
)
from repro.core import (
    EarlyConsensus,
    IteratedApproximateAgreement,
    ReliableBroadcast,
    RotorCoordinator,
)

from tests.conftest import predict_ids, run_quick

#: (correct, byzantine) shapes: minimum, tight, generous, large.
SHAPES = [(3, 1), (7, 3), (12, 2), (21, 6)]


@pytest.mark.parametrize("correct,byzantine", SHAPES)
@pytest.mark.parametrize("seed", [0, 17])
class TestConsensusConformance:
    def test_agreement_and_validity(self, correct, byzantine, seed):
        inputs = [i % 3 for i in range(correct)]
        result = run_quick(
            correct=correct,
            byzantine=byzantine,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(inputs[i]),
            strategy_factory=lambda nid, i: QuorumSplitterStrategy(
                EarlyConsensus(0)
            ),
            max_rounds=2 + 5 * (2 * byzantine + 8),
        )
        check_agreement(result).raise_if_failed()
        check_validity(result, inputs).raise_if_failed()


@pytest.mark.parametrize("correct,byzantine", SHAPES)
class TestReliableBroadcastConformance:
    def test_all_three_properties(self, correct, byzantine):
        correct_ids, _ = predict_ids(4, correct, byzantine)
        sender = correct_ids[0]
        result = run_quick(
            correct=correct,
            byzantine=byzantine,
            seed=4,
            rushing=True,
            protocol_factory=lambda nid, i: ReliableBroadcast(
                sender, "m" if nid == sender else None
            ),
            strategy_factory=lambda nid, i: MembershipLiarStrategy(),
            max_rounds=8,
            until_all_halted=False,
        )
        check_reliable_broadcast(result, sender, "m", True).raise_if_failed()


@pytest.mark.parametrize("correct,byzantine", SHAPES)
class TestRotorConformance:
    def test_good_round(self, correct, byzantine):
        result = run_quick(
            correct=correct,
            byzantine=byzantine,
            seed=6,
            rushing=True,
            protocol_factory=lambda nid, i: RotorCoordinator(opinion=i),
            strategy_factory=lambda nid, i: EquivocatorStrategy(
                RotorCoordinator(opinion=-1)
            ),
            max_rounds=3 * (correct + byzantine) + 20,
        )
        check_rotor_good_round(result).raise_if_failed()


@pytest.mark.parametrize("correct,byzantine", SHAPES)
class TestApproxConformance:
    def test_containment_and_halving(self, correct, byzantine):
        inputs = [float(i) for i in range(correct)]
        iterations = 6
        result = run_quick(
            correct=correct,
            byzantine=byzantine,
            seed=8,
            rushing=True,
            protocol_factory=lambda nid, i: IteratedApproximateAgreement(
                inputs[i], iterations=iterations
            ),
            strategy_factory=lambda nid, i: ValueInjectorStrategy(
                low=-1e9, high=1e9
            ),
            max_rounds=iterations + 4,
        )
        outputs = list(result.outputs.values())
        assert len(outputs) == correct
        assert min(inputs) <= min(outputs) <= max(outputs) <= max(inputs)
        spread = max(outputs) - min(outputs)
        budget = (max(inputs) - min(inputs)) / 2 ** (iterations - 1)
        assert spread <= budget + 1e-9
