"""Integration: the n > 3f frontier is real in both directions.

The paper's headline claim is optimal resiliency: everything works at
n = 3f + 1, and the bound is tight — a suitable adversary breaks
agreement once 3f >= n.  These tests pin both sides.
"""

import pytest

from repro.adversary import QuorumSplitterStrategy, SilentStrategy
from repro.adversary.base import ByzantineStrategy
from repro.core.consensus import EarlyConsensus
from repro.errors import SimulationError

from tests.conftest import run_quick


class TestInsideTheBound:
    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_tight_configurations_agree(self, f):
        result = run_quick(
            correct=2 * f + 1,
            byzantine=f,
            seed=f,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: QuorumSplitterStrategy(
                EarlyConsensus(0)
            ),
            max_rounds=500,
        )
        assert result.agreed


class FullSplitAdversary(ByzantineStrategy):
    """At 3f >= n the adversary can keep two halves permanently split:
    it completes each half's quorums with that half's own value."""

    def on_round(self, view):
        from repro.sim.message import BROADCAST, Send

        if view.round == 1:
            return [Send(BROADCAST, "init")]
        ordered = sorted(view.correct_nodes)
        half = len(ordered) // 2
        lower, upper = ordered[:half], ordered[half:]
        sends = []
        for kind in ("input", "prefer", "strongprefer"):
            sends.extend(Send(d, kind, 0) for d in lower)
            sends.extend(Send(d, kind, 1) for d in upper)
        return sends


class TestBeyondTheBound:
    def test_violation_observable_at_3f_geq_n(self):
        """With f = n/3 the splitter can force disagreement or livelock
        on at least one seed."""
        broken = 0
        for seed in range(6):
            try:
                result = run_quick(
                    correct=6,
                    byzantine=3,  # n=9, 3f=9 >= n
                    seed=seed,
                    rushing=True,
                    protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
                    strategy_factory=lambda nid, i: FullSplitAdversary(),
                    max_rounds=150,
                    enforce_resiliency=False,
                )
                if not result.agreed:
                    broken += 1
            except SimulationError:
                broken += 1
        assert broken > 0

    def test_far_beyond_bound_breaks_reliably(self):
        broken = 0
        for seed in range(4):
            try:
                result = run_quick(
                    correct=4,
                    byzantine=4,  # n=8, 3f=12 >> n
                    seed=seed,
                    rushing=True,
                    protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
                    strategy_factory=lambda nid, i: FullSplitAdversary(),
                    max_rounds=150,
                    enforce_resiliency=False,
                )
                if not result.agreed:
                    broken += 1
            except SimulationError:
                broken += 1
        assert broken >= 3

    def test_benign_adversary_does_not_prove_the_bound(self):
        """Sanity: merely *having* too many Byzantine nodes does not by
        itself break runs when they act benignly — the bound is about
        worst-case behaviour."""
        result = run_quick(
            correct=6,
            byzantine=3,
            seed=0,
            protocol_factory=lambda nid, i: EarlyConsensus(1),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=150,
            enforce_resiliency=False,
        )
        assert result.agreed
