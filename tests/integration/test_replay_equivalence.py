"""Replay-equivalence safety net for the rewritten round engine.

The recordings under ``tests/data/replay_*.jsonl`` were taken on the
pre-rewrite (send-time recipient, per-recipient staging) engine for four
representative scenarios — reliable broadcast, rotor, consensus, and
parallel consensus, each under a rushing adversary.  The rewritten
shared-broadcast-queue engine must reproduce every delivery, output, and
round count byte-identically: none of these scenarios uses a membership
schedule, so the joiner fix intentionally changes nothing here.
"""

import pytest

from repro.sim.replay import RunRecording, verify_replay

from tests.replay_scenarios import SCENARIOS, recording_path


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_engine_reproduces_pre_rewrite_recording(name):
    recording = RunRecording.load(recording_path(name))
    assert recording.deliveries, f"empty recording for {name}"
    differences = verify_replay(SCENARIOS[name](), recording)
    assert differences == [], "\n".join(differences)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_recordings_have_no_duplicate_delivery_records(name):
    # One record per (round, recipient, stamped message): the recorder
    # derives records from delivered inboxes, which are already deduped.
    recording = RunRecording.load(recording_path(name))
    keys = [
        (d.round, d.recipient, d.sender, d.kind, d.payload_repr,
         d.instance_repr)
        for d in recording.deliveries
    ]
    assert len(keys) == len(set(keys))
