"""Golden-recording regression tests.

A committed JSONL recording pins every delivery of a reference run; if
a refactor changes *any* wire behaviour — message order, payload shape,
round counts, outputs — this test names the first diverging delivery.
Intentional behaviour changes must regenerate the golden file (see the
module docstring of :mod:`repro.sim.replay`) and document themselves in
DESIGN.md.
"""

import pathlib

from repro.adversary import QuorumSplitterStrategy
from repro.core.consensus import EarlyConsensus
from repro.sim.replay import RunRecording, verify_replay
from repro.sim.runner import Scenario

DATA = pathlib.Path(__file__).parent.parent / "data"


def golden_scenario():
    return Scenario(
        correct=5,
        byzantine=1,
        protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
        strategy_factory=lambda nid, i: QuorumSplitterStrategy(
            EarlyConsensus(0)
        ),
        seed=5,
        rushing=True,
        max_rounds=100,
    )


class TestGoldenConsensus:
    def test_current_code_reproduces_the_golden_run(self):
        recording = RunRecording.load(
            DATA / "golden_consensus_seed5.jsonl"
        )
        differences = verify_replay(golden_scenario(), recording)
        assert differences == [], "\n".join(differences)

    def test_golden_run_has_expected_shape(self):
        recording = RunRecording.load(
            DATA / "golden_consensus_seed5.jsonl"
        )
        assert recording.rounds == 12  # 2 init + 2 phases
        assert len(recording.outputs) == 5
        assert len(set(recording.outputs.values())) == 1
        assert len(recording.deliveries) == 642
