"""Integration: the full adversary x protocol matrix.

Every registered strategy, against every terminating core protocol, at
n > 3f with rushing enabled: nothing may break.  This is the closest a
test suite gets to the paper's "for all Byzantine behaviours" quantifier.
"""

import pytest

from repro.adversary import STRATEGY_BUILDERS, build_strategy
from repro.analysis.checkers import check_agreement
from repro.core import (
    BinaryKingConsensus,
    ByzantineRenaming,
    EarlyConsensus,
    InteractiveConsistency,
    ParallelConsensus,
    RotorCoordinator,
    TerminatingReliableBroadcast,
)
from repro.core.approx_agreement import IteratedApproximateAgreement

from tests.conftest import predict_ids, run_quick

PROTOCOLS = {
    "consensus": lambda nid, i: EarlyConsensus(i % 2),
    "binary-king": lambda nid, i: BinaryKingConsensus(i % 2),
    "renaming": lambda nid, i: ByzantineRenaming(),
    "parallel": lambda nid, i: ParallelConsensus({"k": i % 2}),
    "interactive-consistency": lambda nid, i: InteractiveConsistency(i),
}

#: Protocol each wrapping strategy impersonates, per protocol under test.
HONEST = {
    "consensus": lambda: EarlyConsensus(0),
    "binary-king": lambda: BinaryKingConsensus(0),
    "approx": lambda: IteratedApproximateAgreement(0.0, iterations=5),
    "renaming": lambda: ByzantineRenaming(),
    "parallel": lambda: ParallelConsensus({"k": 0}),
    "interactive-consistency": lambda: InteractiveConsistency(0),
}


@pytest.mark.parametrize("strategy_name", STRATEGY_BUILDERS)
def test_matrix_approx(strategy_name):
    """Approximate agreement promises ε-closeness inside the input
    range, not exact agreement — judged accordingly."""
    inputs = [float(i) for i in range(7)]
    result = run_quick(
        correct=7,
        byzantine=2,
        seed=11,
        rushing=True,
        protocol_factory=lambda nid, i: IteratedApproximateAgreement(
            inputs[i], iterations=5
        ),
        strategy_factory=build_strategy(
            strategy_name, protocol_factory=HONEST["approx"]
        ),
        max_rounds=40,
    )
    outputs = list(result.outputs.values())
    assert len(outputs) == 7
    assert min(inputs) <= min(outputs) <= max(outputs) <= max(inputs)
    assert max(outputs) - min(outputs) <= (max(inputs) - min(inputs)) / 2**4


@pytest.mark.parametrize("strategy_name", STRATEGY_BUILDERS)
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_matrix(protocol_name, strategy_name):
    result = run_quick(
        correct=7,
        byzantine=2,
        seed=11,
        rushing=True,
        protocol_factory=PROTOCOLS[protocol_name],
        strategy_factory=build_strategy(
            strategy_name, protocol_factory=HONEST[protocol_name]
        ),
        max_rounds=400,
    )
    check_agreement(result).raise_if_failed()


@pytest.mark.parametrize("strategy_name", STRATEGY_BUILDERS)
def test_matrix_rotor(strategy_name):
    from repro.analysis.checkers import check_rotor_good_round

    result = run_quick(
        correct=7,
        byzantine=2,
        seed=11,
        rushing=True,
        protocol_factory=lambda nid, i: RotorCoordinator(opinion=i),
        strategy_factory=build_strategy(
            strategy_name,
            protocol_factory=lambda: RotorCoordinator(opinion=99),
        ),
        max_rounds=120,
    )
    check_rotor_good_round(result).raise_if_failed()


@pytest.mark.parametrize("strategy_name", STRATEGY_BUILDERS)
def test_matrix_trb(strategy_name):
    correct_ids, _ = predict_ids(11, 7, 2)
    sender = correct_ids[0]
    result = run_quick(
        correct=7,
        byzantine=2,
        seed=11,
        rushing=True,
        protocol_factory=lambda nid, i: TerminatingReliableBroadcast(
            sender, "m" if nid == sender else None
        ),
        strategy_factory=build_strategy(
            strategy_name,
            protocol_factory=lambda: TerminatingReliableBroadcast(
                sender, None
            ),
        ),
        max_rounds=400,
    )
    check_agreement(result).raise_if_failed()
    assert result.distinct_outputs == {"m"}
