"""Cross-runtime parity: one protocol, two runtimes, one event stream.

The tentpole invariant of the observability plane (DESIGN.md §4): the
semantic (``protocol``-topic) events of a run are a property of the
*protocol*, not of the runtime driving it.  The same seeded
``EarlyConsensus`` population is executed under the deterministic
:class:`SyncNetwork` and under TCP :class:`LockstepRunner` loopback
peers, and both event streams — collected off each runtime's bus by the
same subscriber — must coincide.

The net runtime's runners publish from per-node threads, so the global
interleaving across nodes is nondeterministic; the per-``(round, node)``
content is not.  Streams are therefore compared as sorted tuples, and
per-node event order is additionally pinned.
"""

from __future__ import annotations

import time

from repro.core.consensus import EarlyConsensus
from repro.net import LockstepRunner, NetPeer
from repro.obs import EventBus
from repro.sim.network import SyncNetwork

NODE_IDS = (11, 23, 37, 41)
PERIOD = 0.06  # generous: a loaded host can slip tighter round clocks
MAX_ROUNDS = 60


def canonical(events):
    """Runtime-independent rendering of one protocol-event stream."""
    return sorted(
        (e.round, e.node, e.event, repr(sorted(e.detail.items())))
        for e in events
    )


def run_sim():
    bus = EventBus()
    events = []
    bus.subscribe(events.append, "protocol")
    net = SyncNetwork(seed=0, bus=bus)
    for index, node_id in enumerate(NODE_IDS):
        net.add_correct(node_id, EarlyConsensus(index % 2))
    net.run(MAX_ROUNDS)
    return events, net.outputs()


def run_net():
    bus = EventBus()
    events = []
    bus.subscribe(events.append, "protocol")
    peers = {node_id: NetPeer(node_id) for node_id in NODE_IDS}
    book = [peer.address for peer in peers.values()]
    protocols = {}
    runners = []
    for index, node_id in enumerate(NODE_IDS):
        peers[node_id].start(book)
        protocol = EarlyConsensus(index % 2)
        protocols[node_id] = protocol
        runners.append(
            LockstepRunner(
                peers[node_id],
                protocol,
                period=PERIOD,
                max_rounds=MAX_ROUNDS,
                bus=bus,
            )
        )
    start = time.monotonic() + 0.2
    try:
        for runner in runners:
            runner.start(start)
        for runner in runners:
            runner.join(timeout=30.0)
    finally:
        for peer in peers.values():
            peer.stop()
    outputs = {
        node_id: protocol.output
        for node_id, protocol in protocols.items()
        if protocol.halted
    }
    return events, outputs


class TestCrossRuntimeParity:
    def test_semantic_event_streams_coincide(self):
        sim_events, sim_outputs = run_sim()
        net_events, net_outputs = run_net()
        assert sim_outputs == net_outputs
        assert sim_events, "sim produced no protocol events"
        assert canonical(sim_events) == canonical(net_events)
        # per-node event order is deterministic on both runtimes
        for node_id in NODE_IDS:
            sim_stream = [
                (e.round, e.event) for e in sim_events if e.node == node_id
            ]
            net_stream = [
                (e.round, e.event) for e in net_events if e.node == node_id
            ]
            assert sim_stream == net_stream
