"""Integration: compositions and cross-protocol consistency.

These tests exercise the seams between subsystems — the embedded rotor
inside consensus, the shared candidate set under parallel consensus, the
machines inside total ordering — and compare in-model protocols against
their known-n,f baselines on the same inputs.
"""

import pytest

from repro.adversary import SilentStrategy, ValueInjectorStrategy
from repro.baselines import DolevApproxAgreement
from repro.core.approx_agreement import IteratedApproximateAgreement
from repro.core.consensus import EarlyConsensus
from repro.core.parallel_consensus import ParallelConsensus
from repro.sim.network import SyncNetwork
from repro.sim.rng import consecutive_ids

from tests.conftest import run_quick


class TestEmbeddedRotor:
    def test_consensus_rotor_candidates_cover_correct_nodes(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=1,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        for node in result.correct_ids:
            protocol = result.protocols[node]
            assert set(result.correct_ids) <= set(protocol.rotor.candidates)

    def test_phase_coordinators_agree_across_nodes(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=2,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        per_phase = {}
        for event in result.trace.of("phase-coordinator"):
            per_phase.setdefault(event.get("phase"), set()).add(
                event.get("coordinator")
            )
        for phase, coordinators in per_phase.items():
            assert len(coordinators) == 1, (phase, coordinators)


class TestUnknownVsKnownF:
    def test_approx_convergence_rate_matches_dolev(self):
        """§12: 'the convergence rate of the approximate agreement
        algorithm remains unchanged'."""
        inputs = [0.0, 8.0, 2.0, 6.0, 4.0, 1.0, 7.0]
        iterations = 6

        unknown = run_quick(
            correct=7,
            byzantine=2,
            seed=5,
            rushing=True,
            protocol_factory=lambda nid, i: IteratedApproximateAgreement(
                inputs[i], iterations=iterations
            ),
            strategy_factory=lambda nid, i: ValueInjectorStrategy(),
            max_rounds=12,
        )

        net = SyncNetwork(seed=5, rushing=True)
        ids = consecutive_ids(9)
        for index, node_id in enumerate(ids[:7]):
            net.add_correct(
                node_id,
                DolevApproxAgreement(inputs[index], f=2, iterations=iterations),
            )
        for node_id in ids[7:]:
            net.add_byzantine(node_id, ValueInjectorStrategy())
        net.run(12)

        def final_range(outputs):
            values = list(outputs.values())
            return max(values) - min(values)

        unknown_range = final_range(unknown.outputs)
        known_range = final_range(net.outputs())
        budget = (max(inputs) - min(inputs)) / 2 ** (iterations - 1)
        assert unknown_range <= budget
        assert known_range <= budget

    def test_same_rounds_for_reliable_broadcast(self):
        """Both RB variants accept a correct sender's message in round 3."""
        from repro.baselines import SrikanthTouegBroadcast
        from repro.core.reliable_broadcast import ReliableBroadcast
        from tests.conftest import predict_ids

        correct_ids, _ = predict_ids(0, 7, 2)
        sender = correct_ids[0]
        unknown = run_quick(
            correct=7,
            byzantine=2,
            seed=0,
            protocol_factory=lambda nid, i: ReliableBroadcast(
                sender, "m" if nid == sender else None
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=6,
            until_all_halted=False,
        )
        net = SyncNetwork(seed=0)
        ids = consecutive_ids(9)
        for node_id in ids[:7]:
            net.add_correct(
                node_id,
                SrikanthTouegBroadcast(
                    0, 9, 2, "m" if node_id == 0 else None
                ),
            )
        for node_id in ids[7:]:
            net.add_byzantine(node_id, SilentStrategy())
        net.run(6, until_all_halted=False)

        unknown_rounds = {
            unknown.protocols[n].acceptance_round("m")
            for n in unknown.correct_ids
        }
        known_rounds = {
            p.accepted[("m", 0)] for p in net.protocols().values()
        }
        assert unknown_rounds == known_rounds == {3}


class TestParallelVsSequential:
    def test_parallel_consensus_agrees_with_single_consensus(self):
        """One instance of parallel consensus must reach the same kind of
        outcome as Algorithm 3 on the same unanimous input."""
        single = run_quick(
            correct=7,
            byzantine=2,
            seed=3,
            protocol_factory=lambda nid, i: EarlyConsensus(42),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        parallel = run_quick(
            correct=7,
            byzantine=2,
            seed=3,
            protocol_factory=lambda nid, i: ParallelConsensus({"k": 42}),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert single.distinct_outputs == {42}
        assert parallel.distinct_outputs == {(("k", 42),)}

    @pytest.mark.parametrize("count", [1, 4, 16])
    def test_rounds_flat_in_instance_count(self, count):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=4,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {f"id{k}": k for k in range(count)}
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.rounds <= 15
