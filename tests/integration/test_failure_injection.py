"""Failure injection: crash storms, partial broadcasts, mixed adversaries.

Benign-but-nasty fault patterns (fail-stop at staggered rounds, crashes
mid-broadcast, different strategies on different Byzantine nodes) across
the protocol portfolio.
"""

import pytest

from repro.adversary import (
    CrashStrategy,
    EchoForgerStrategy,
    QuorumSplitterStrategy,
    SilentStrategy,
)
from repro.adversary.simple import HalfCrashStrategy
from repro.analysis.checkers import check_agreement
from repro.core import (
    ByzantineRenaming,
    EarlyConsensus,
    InteractiveConsistency,
    ParallelConsensus,
)

from tests.conftest import run_quick


class TestCrashStorms:
    @pytest.mark.parametrize("crash_round", [2, 4, 6, 9])
    def test_consensus_survives_any_crash_round(self, crash_round):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=crash_round,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: CrashStrategy(
                EarlyConsensus(i % 2), crash_round
            ),
        )
        check_agreement(result).raise_if_failed()

    @pytest.mark.parametrize("seed", range(4))
    def test_half_crash_mid_broadcast(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: HalfCrashStrategy(
                EarlyConsensus(i % 2), crash_round=4 + i
            ),
        )
        check_agreement(result).raise_if_failed()

    def test_staggered_crashes_across_byzantine_nodes(self):
        result = run_quick(
            correct=10,
            byzantine=3,
            seed=7,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: CrashStrategy(
                EarlyConsensus(i % 2), crash_round=3 + 2 * i
            ),
        )
        check_agreement(result).raise_if_failed()


class TestMixedAdversaries:
    """Different Byzantine nodes running different attacks at once."""

    def mixed_factory(self, honest_factory):
        strategies = [
            lambda: QuorumSplitterStrategy(honest_factory()),
            lambda: EchoForgerStrategy(),
            lambda: SilentStrategy(),
        ]

        def build(node_id, index):
            return strategies[index % len(strategies)]()

        return build

    @pytest.mark.parametrize("seed", range(4))
    def test_consensus_under_mixed_attack(self, seed):
        result = run_quick(
            correct=10,
            byzantine=3,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=self.mixed_factory(
                lambda: EarlyConsensus(0)
            ),
        )
        check_agreement(result).raise_if_failed()

    @pytest.mark.parametrize("seed", range(3))
    def test_renaming_under_mixed_attack(self, seed):
        result = run_quick(
            correct=10,
            byzantine=3,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: ByzantineRenaming(),
            strategy_factory=self.mixed_factory(
                lambda: ByzantineRenaming()
            ),
            max_rounds=150,
        )
        check_agreement(result).raise_if_failed()

    @pytest.mark.parametrize("seed", range(3))
    def test_interactive_consistency_under_mixed_attack(self, seed):
        result = run_quick(
            correct=10,
            byzantine=3,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: InteractiveConsistency(i),
            strategy_factory=self.mixed_factory(
                lambda: InteractiveConsistency(0)
            ),
        )
        check_agreement(result).raise_if_failed()


class TestScale:
    """Larger populations — the O(f)/O(n) budgets must hold at scale."""

    def test_consensus_forty_nodes(self):
        result = run_quick(
            correct=31,
            byzantine=9,
            seed=0,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=2 + 5 * 25,
        )
        check_agreement(result).raise_if_failed()

    def test_parallel_consensus_thirty_instances(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=1,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {f"id{k}": k for k in range(30)}
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        check_agreement(result).raise_if_failed()
        (output,) = result.distinct_outputs
        assert len(output) == 30
