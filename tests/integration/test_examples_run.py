"""Every example must run clean — examples rot unless executed.

Each example asserts its own claims internally (they all end with
assertions); these tests only need exit code 0 and a recognisable line
of output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent.parent / "examples"

CASES = {
    "quickstart.py": "Agreement reached",
    "sensor_fusion.py": "All correct sensors agree",
    "dynamic_ledger.py": "chain-prefix holds",
    "elastic_cluster.py": "every correct machine computed the same",
    "replicated_kv.py": "identical state",
    "impossibility_demo.py": "disagreement:       True",
    "custom_protocol.py": "certified the honest statement",
    "net_cluster.py": "real sockets",
}


@pytest.mark.parametrize("example,marker", sorted(CASES.items()))
def test_example_runs_clean(example, marker):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout, (
        f"expected {marker!r} in output:\n{completed.stdout[-2000:]}"
    )


def test_every_example_is_covered():
    on_disk = {
        path.name
        for path in EXAMPLES.glob("*.py")
    }
    assert on_disk == set(CASES), (
        "examples and test cases drifted apart"
    )
