"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "consensus"])
        assert args.n == 10
        assert args.f == 3
        assert args.adversary == "silent"

    def test_sweep_defaults_force(self):
        args = build_parser().parse_args(["sweep", "consensus"])
        assert args.force is True

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])

    def test_rejects_unknown_adversary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "consensus", "--adversary", "nonsense"]
            )


class TestCommands:
    def test_run_consensus_ok(self, capsys):
        code = main(
            ["run", "consensus", "--n", "7", "--f", "2", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement: OK" in out

    def test_run_with_wrapping_adversary(self, capsys):
        code = main(
            [
                "run",
                "consensus",
                "--n",
                "7",
                "--f",
                "2",
                "--adversary",
                "splitter",
                "--rushing",
            ]
        )
        assert code == 0

    @pytest.mark.parametrize(
        "protocol", ["rotor", "approx", "renaming", "binary-consensus"]
    )
    def test_run_other_protocols(self, protocol, capsys):
        code = main(
            ["run", protocol, "--n", "7", "--f", "2", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rounds" in out

    def test_sweep_prints_table(self, capsys):
        code = main(
            [
                "sweep",
                "consensus",
                "--n",
                "7",
                "--max-f",
                "2",
                "--seeds",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "| f " in out
        assert "n>3f" in out

    def test_run_events_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        code = main(
            [
                "run",
                "consensus",
                "--n",
                "6",
                "--f",
                "1",
                "--events",
                str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"-> {path}" in out
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["topic"] == "schema"
        topics = {doc["topic"] for doc in lines[1:]}
        assert {"run-start", "round-start", "send", "deliver",
                "protocol"} <= topics

    def test_record_and_verify_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "record",
                    "consensus",
                    "--n",
                    "7",
                    "--f",
                    "2",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()
        assert (
            main(
                [
                    "record",
                    "consensus",
                    "--n",
                    "7",
                    "--f",
                    "2",
                    "--verify",
                    str(out),
                ]
            )
            == 0
        )
        assert "matches" in capsys.readouterr().out

    def test_record_verify_detects_mismatch(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(["record", "consensus", "--n", "7", "--f", "2", "--out",
              str(out)])
        code = main(
            [
                "record",
                "consensus",
                "--n",
                "7",
                "--f",
                "2",
                "--seed",
                "9",
                "--verify",
                str(out),
            ]
        )
        assert code == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_matrix_command(self, capsys):
        code = main(
            [
                "matrix",
                "consensus",
                "--n",
                "7",
                "--f",
                "2",
                "--seeds",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "adversary matrix" in out
        assert "adaptive" in out

    def test_run_timeline_flag(self, capsys):
        code = main(
            [
                "run",
                "consensus",
                "--n",
                "4",
                "--f",
                "0",
                "--timeline",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DEC=" in out

    def test_demo_impossibility(self, capsys):
        code = main(["demo", "impossibility"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Lemma 9.1" in out
        assert "disagreement     : True" in out


class TestScenarioFile:
    def test_run_from_scenario_file(self, tmp_path, capsys):
        from repro.scenario import RunSpec

        path = RunSpec(
            protocol="consensus", n=7, f=2, adversary="splitter",
            rushing=True, seed=4,
        ).save(tmp_path / "spec.json")
        code = main(["run", "--scenario", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement: OK" in out
        assert "seed=4" in out

    def test_seed_flag_overrides_scenario_seed(self, tmp_path, capsys):
        from repro.scenario import RunSpec

        path = RunSpec(protocol="consensus", n=7, f=2, seed=4).save(
            tmp_path / "spec.json"
        )
        code = main(["run", "--scenario", str(path), "--seed", "9"])
        assert code == 0
        assert "seed=9" in capsys.readouterr().out

    def test_run_without_protocol_or_scenario_exits(self):
        with pytest.raises(SystemExit):
            main(["run"])


class TestCampaign:
    def test_small_total_order_campaign(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        code = main(
            [
                "campaign",
                "--runs", "4",
                "--max-rounds", "48",
                "--churn-param", "start=10",
                "--churn-param", "stop=30",
                "--protocol-param", "event_last=26",
                "--protocol-param", "event_every=4",
                "--out", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chain-prefix" in out
        assert "violation rate%" in out
        doc = json.loads(report.read_text())
        assert doc["runs"] == 4
        assert doc["base"]["protocol"] == "total-order"

    def test_campaign_reports_violations_with_artifacts(
        self, tmp_path, capsys
    ):
        # A one-round budget cannot finish: exit 1 plus replay pointers.
        code = main(
            [
                "campaign",
                "consensus",
                "--n", "4",
                "--f", "0",
                "--churn", "none",
                "--max-rounds", "1",
                "--runs", "2",
                "--artifacts", str(tmp_path / "bad"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATIONS: 2" in out
        assert "repro run --scenario" in out
        artifacts = sorted((tmp_path / "bad").glob("*.json"))
        assert len(artifacts) == 2
