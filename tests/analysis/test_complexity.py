"""Tests for the complexity-curve fitting."""

import pytest

from repro.analysis.complexity import classify_growth, fit_line


class TestFitLine:
    def test_perfect_line(self):
        fit = fit_line([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line(self):
        fit = fit_line([1, 2, 3, 4, 5], [2.1, 3.9, 6.2, 7.8, 10.1])
        assert fit.slope == pytest.approx(2.0, abs=0.2)
        assert fit.r_squared > 0.98

    def test_flat(self):
        fit = fit_line([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_line([0, 1], [1, 3])
        assert fit.predict(2) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_line([1], [2])
        with pytest.raises(ValueError):
            fit_line([1, 2], [1])
        with pytest.raises(ValueError):
            fit_line([2, 2], [1, 3])


class TestClassifyGrowth:
    def test_constant_series(self):
        verdict = classify_growth([4, 8, 16, 32], [12, 12, 13, 12])
        assert verdict.kind == "constant"
        assert verdict.is_linear_or_better

    def test_linear_series(self):
        verdict = classify_growth([4, 8, 16, 32], [6, 10, 18, 34])
        assert verdict.kind == "linear"
        assert verdict.is_linear_or_better

    def test_quadratic_series(self):
        verdict = classify_growth([4, 8, 16, 32], [16, 64, 256, 1024])
        assert verdict.kind == "superlinear"
        assert not verdict.is_linear_or_better

    def test_real_rotor_shape(self):
        # the E2 measurements: max termination round vs n
        verdict = classify_growth([4, 7, 13, 25, 49], [6, 8, 12, 20, 36])
        assert verdict.kind == "linear"
        assert 0.5 < verdict.fit.slope < 1.1

    def test_real_consensus_vs_n_shape(self):
        # the E3b measurements: rounds vs n at fixed f
        verdict = classify_growth([7, 13, 25, 49], [14, 12, 12, 12])
        assert verdict.kind == "constant"
