"""Monte Carlo campaign runner: seed derivation, determinism, artifacts."""

import json

from repro.analysis.campaign import (
    build_specs,
    derive_seed,
    evaluate_spec,
    format_campaign_report,
    run_campaign,
)
from repro.scenario import ChurnSpec, RunSpec

BASE = RunSpec(
    protocol="total-order",
    n=7,
    f=2,
    protocol_params={"event_first": 2, "event_last": 26, "event_every": 4},
    churn=ChurnSpec(
        "rate",
        {"join_rate": 0.1, "leave_rate": 0.05, "start": 10, "stop": 30},
    ),
    max_rounds=48,
)


class TestSeedDerivation:
    def test_pinned_values(self):
        # The derivation is part of the campaign's replay contract:
        # (campaign seed, index) -> run seed must never drift, or old
        # violation artifacts stop matching their reports.
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert derive_seed(0, 0) != derive_seed(0, 1)
        assert derive_seed(0, 5) != derive_seed(1, 5)

    def test_seeds_fit_in_31_bits(self):
        for index in range(200):
            assert 0 <= derive_seed(12345, index) < 2**31

    def test_no_collisions_in_a_large_campaign(self):
        seeds = [derive_seed(7, index) for index in range(5000)]
        assert len(set(seeds)) == len(seeds)

    def test_build_specs_only_varies_the_seed(self):
        specs = build_specs(BASE, 4, campaign_seed=9)
        assert len(specs) == 4
        for index, spec in enumerate(specs):
            assert spec.seed == derive_seed(9, index)
            assert spec.protocol == BASE.protocol
            assert spec.churn == BASE.churn


class TestCampaign:
    def test_small_campaign_holds_all_monitors(self):
        report = run_campaign(BASE, runs=6, campaign_seed=0)
        assert report.ok
        assert report.runs == 6
        assert set(report.monitors) == {
            "chain-prefix", "chain-growth", "finality-lag", "termination",
        }
        for stats in report.monitors.values():
            assert stats["checked"] == 6
            assert stats["violations"] == 0

    def test_report_bytes_invariant_under_worker_count(self, tmp_path):
        serial = run_campaign(BASE, runs=6, campaign_seed=3, workers=1)
        pooled = run_campaign(BASE, runs=6, campaign_seed=3, workers=3)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        serial.save(a)
        pooled.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_consensus_campaign_checks_agreement_and_termination(self):
        base = RunSpec(protocol="consensus", n=7, f=2,
                       adversary="splitter", rushing=True, max_rounds=60)
        report = run_campaign(base, runs=4)
        assert report.ok
        assert set(report.monitors) == {"agreement", "termination"}

    def test_violation_recorded_with_replay_artifact(self, tmp_path):
        # A one-round budget cannot finish: every run is a liveness
        # violation, and each violating spec is saved as a replayable
        # RunSpec artifact.
        doomed = RunSpec(protocol="consensus", n=4, max_rounds=1)
        report = run_campaign(
            doomed, runs=2, artifacts_dir=tmp_path / "artifacts"
        )
        assert not report.ok
        assert report.monitors["termination"]["violations"] == 2
        assert report.violation_rate("termination") == 1.0
        for record in report.violations:
            assert record["monitor"] == "termination"
            loaded = RunSpec.load(record["artifact"])
            assert loaded.seed == record["seed"]
            assert loaded == build_specs(doomed, 2, 0)[record["index"]]

    def test_report_json_and_table_round(self, tmp_path):
        report = run_campaign(BASE, runs=3)
        path = report.save(tmp_path / "report.json")
        doc = json.loads(path.read_text())
        assert doc["runs"] == 3
        assert doc["base"]["protocol"] == "total-order"
        text = format_campaign_report(report)
        assert "chain-prefix" in text
        assert "violation rate%" in text

    def test_progress_callback_fires_inline(self):
        ticks = []
        run_campaign(BASE, runs=3, progress=lambda done, total:
                     ticks.append((done, total)))
        assert ticks == [(1, 3), (2, 3), (3, 3)]


class TestEvaluateSpec:
    def test_verdict_row_is_picklable_shape(self):
        row = evaluate_spec(BASE)
        assert row["verdicts"]["chain-prefix"] is None
        assert row["rounds"] == BASE.max_rounds
        assert row["chain_length"] > 0
        assert row["sends"] > 0
