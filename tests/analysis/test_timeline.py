"""Tests for the ASCII timeline renderer."""

from repro.analysis.timeline import render_timeline
from repro.core.consensus import EarlyConsensus
from repro.sim.trace import Trace

from tests.conftest import run_quick


class TestRenderTimeline:
    def test_empty_trace(self):
        assert "(no matching events)" in render_timeline(Trace(), [1, 2])

    def test_synthetic_events(self):
        trace = Trace()
        trace.record(1, 10, "decide", {"value": 1})
        trace.record(2, 20, "decide", {"value": 1})
        text = render_timeline(trace, [10, 20])
        assert "decide=1" in text
        assert "10" in text.splitlines()[0]
        assert "20" in text.splitlines()[0]

    def test_silent_rounds_skipped(self):
        trace = Trace()
        trace.record(1, 10, "decide", {"value": 0})
        trace.record(9, 10, "decide", {"value": 0})
        text = render_timeline(trace, [10])
        rows = [l for l in text.splitlines()[2:]]
        assert len(rows) == 2  # rounds 1 and 9 only

    def test_event_filter(self):
        trace = Trace()
        trace.record(1, 10, "decide", {"value": 0})
        trace.record(1, 10, "accept", {})
        text = render_timeline(trace, [10], events=["accept"])
        assert "accept" in text
        assert "decide" not in text

    def test_max_rounds_cutoff(self):
        trace = Trace()
        trace.record(1, 10, "accept", {})
        trace.record(50, 10, "accept", {})
        text = render_timeline(trace, [10], max_rounds=10)
        assert "50" not in text

    def test_unknown_template_key_degrades_gracefully(self):
        trace = Trace()
        trace.record(1, 10, "decide", {})  # no 'value' in detail
        text = render_timeline(trace, [10])
        assert "decide" in text

    def test_real_consensus_run(self):
        result = run_quick(
            correct=4,
            protocol_factory=lambda nid, i: EarlyConsensus(1),
        )
        text = render_timeline(result.trace, result.correct_ids)
        assert "DEC=1" in text
        # every correct node decided, so the glyph appears 4 times
        assert text.count("DEC=1") == 4
