"""Tests for the parallel-consensus output checker."""

import pytest

from repro.adversary import SilentStrategy
from repro.analysis.checkers import check_parallel_outputs
from repro.core.parallel_consensus import ParallelConsensus
from repro.sim.metrics import Metrics
from repro.sim.runner import ScenarioResult
from repro.sim.trace import Trace

from tests.conftest import run_quick


def fake_result(correct_ids, outputs):
    return ScenarioResult(
        network=None,
        correct_ids=list(correct_ids),
        byzantine_ids=[],
        rounds=1,
        outputs=dict(outputs),
        metrics=Metrics(),
        trace=Trace(),
    )


class TestSynthetic:
    def test_accepts_valid_run(self):
        out = (("a", 1), ("b", 2))
        result = fake_result([1, 2], {1: out, 2: out})
        inputs = {1: {"a": 1, "b": 2}, 2: {"a": 1, "b": 2}}
        assert check_parallel_outputs(result, inputs).ok

    def test_rejects_missing_universal_pair(self):
        result = fake_result([1, 2], {1: (), 2: ()})
        inputs = {1: {"a": 1}, 2: {"a": 1}}
        report = check_parallel_outputs(result, inputs)
        assert any("validity" in v for v in report.violations)

    def test_partial_pairs_may_be_dropped(self):
        result = fake_result([1, 2], {1: (), 2: ()})
        inputs = {1: {"a": 1}, 2: {}}  # not universal: drop is legal
        assert check_parallel_outputs(result, inputs).ok

    def test_rejects_fabricated_pair(self):
        out = (("ghost", 9),)
        result = fake_result([1, 2], {1: out, 2: out})
        inputs = {1: {}, 2: {}}
        report = check_parallel_outputs(result, inputs)
        assert any("fabrication" in v for v in report.violations)

    def test_rejects_value_not_input_by_anyone(self):
        out = (("a", 5),)
        result = fake_result([1, 2], {1: out, 2: out})
        inputs = {1: {"a": 1}, 2: {"a": 2}}
        report = check_parallel_outputs(result, inputs)
        assert any("fabrication" in v for v in report.violations)

    def test_value_from_some_correct_node_ok(self):
        out = (("a", 2),)
        result = fake_result([1, 2], {1: out, 2: out})
        inputs = {1: {"a": 1}, 2: {"a": 2}}
        assert check_parallel_outputs(result, inputs).ok

    def test_disagreement_propagates(self):
        result = fake_result([1, 2], {1: (("a", 1),), 2: (("a", 2),)})
        inputs = {1: {"a": 1}, 2: {"a": 1}}
        assert not check_parallel_outputs(result, inputs).ok


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_real_runs_pass(self, seed):
        inputs_by_node = {}

        def factory(nid, i):
            pairs = {"x": 1} if i < 4 else {"x": 1, "y": 2}
            inputs_by_node[nid] = pairs
            return ParallelConsensus(pairs)

        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=factory,
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        check_parallel_outputs(result, inputs_by_node).raise_if_failed()
