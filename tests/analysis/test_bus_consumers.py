"""Monitors and timelines as event-bus consumers.

The analysis layer predates the event plane; these tests pin the new
attachment paths — a monitor subscribing to a bus directly (so it works
on any runtime) and a timeline rendered from a mixed-topic stream.
"""

from __future__ import annotations

import pytest

from repro.analysis.monitor import AgreementMonitor
from repro.analysis.timeline import render_timeline
from repro.errors import PropertyViolation
from repro.obs import (
    EventBus,
    MessageSent,
    ProtocolEvent,
    RoundStarted,
)
from repro.sim.network import SyncNetwork
from repro.sim.node import Protocol


class Decider(Protocol):
    def __init__(self, value):
        super().__init__()
        self.value = value

    def on_round(self, api, inbox):
        self.decide(api, self.value)


class TestMonitorOnBus:
    def test_attach_to_bus_raises_inside_offending_round(self):
        net = SyncNetwork(seed=0)
        AgreementMonitor().attach(net.bus)
        net.add_correct(1, Decider("a"))
        net.add_correct(2, Decider("b"))
        with pytest.raises(PropertyViolation):
            net.run(3)
        assert net.round == 1  # raised in the round it happened

    def test_attach_to_trace_still_works(self):
        net = SyncNetwork(seed=0)
        monitor = AgreementMonitor().attach(net.trace)
        net.add_correct(1, Decider("a"))
        net.add_correct(2, Decider("a"))
        net.run(3)
        assert monitor.decisions == {1: "a", 2: "a"}

    def test_bus_monitor_ignores_non_protocol_topics(self):
        bus = EventBus()
        monitor = AgreementMonitor().attach(bus)
        bus.publish(RoundStarted(1))
        bus.publish(ProtocolEvent(1, 5, "decide", {"value": 1}))
        assert monitor.decisions == {5: 1}


class TestTimelineOnMixedStream:
    def test_non_protocol_events_skipped(self):
        stream = [
            RoundStarted(1),
            MessageSent(1, 5, "echo"),
            ProtocolEvent(1, 5, "decide", {"value": 1}),
            ProtocolEvent(2, 6, "accept", {"tag": "t"}),
        ]
        art = render_timeline(stream, nodes=[5, 6])
        assert "decide=1" in art
        assert "accept" in art

    def test_bus_collected_stream_renders_like_trace(self):
        bus = EventBus()
        stream = []
        bus.subscribe(stream.append)  # every topic
        net = SyncNetwork(seed=0, bus=bus)
        net.add_correct(1, Decider("x"))
        net.add_correct(2, Decider("x"))
        net.run(3)
        assert render_timeline(stream, nodes=[1, 2]) == render_timeline(
            net.trace, nodes=[1, 2]
        )
