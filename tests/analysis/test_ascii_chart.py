"""ASCII chart renderer."""

from repro.analysis.ascii_chart import render_chart


class TestRenderChart:
    def test_empty(self):
        assert render_chart({}) == "(no data)"
        assert render_chart({"s": []}) == "(no data)"

    def test_single_series_extremes_placed(self):
        text = render_chart(
            {"range": [8, 4, 2, 1]}, width=20, height=6,
            x_label="round", y_label="range",
        )
        lines = text.splitlines()
        assert lines[0].strip() == "range"
        assert "8" in lines[1]  # top label
        # the first sample sits on the top row, the last near the bottom
        assert "*" in lines[1]
        assert "round ->" in lines[-1]

    def test_two_series_get_legend(self):
        text = render_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, width=12, height=5
        )
        assert "[" in text.splitlines()[-1]
        assert "* a" in text
        assert "o b" in text

    def test_flat_series_no_division_by_zero(self):
        text = render_chart({"s": [5, 5, 5]}, width=10, height=4)
        assert "*" in text

    def test_single_point(self):
        text = render_chart({"s": [7]}, width=10, height=4)
        assert "*" in text

    def test_dimensions_respected(self):
        text = render_chart({"s": list(range(30))}, width=25, height=8)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == 8
        assert all(
            len(l.split("|", 1)[1]) <= 25 for l in plot_lines
        )
