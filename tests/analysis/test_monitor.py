"""Online invariant monitors."""

import pytest

from repro.analysis.monitor import (
    AgreementMonitor,
    BoundMonitor,
    RelayMonitor,
)
from repro.core.approx_agreement import IteratedApproximateAgreement
from repro.core.consensus import EarlyConsensus
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.errors import PropertyViolation
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids
from repro.sim.trace import Trace


class TestAgreementMonitor:
    def test_silent_on_agreement(self):
        trace = Trace()
        monitor = AgreementMonitor().attach(trace)
        trace.record(3, 1, "decide", {"value": 7})
        trace.record(3, 2, "decide", {"value": 7})
        assert monitor.decisions == {1: 7, 2: 7}

    def test_raises_on_conflict_with_round_info(self):
        trace = Trace()
        AgreementMonitor().attach(trace)
        trace.record(3, 1, "decide", {"value": 7})
        with pytest.raises(PropertyViolation, match="round 5"):
            trace.record(5, 2, "decide", {"value": 8})

    def test_scoped_to_nodes(self):
        trace = Trace()
        AgreementMonitor(nodes={1, 2}).attach(trace)
        trace.record(3, 1, "decide", {"value": 7})
        trace.record(4, 99, "decide", {"value": 0})  # out of scope: fine

    def test_live_consensus_run_is_clean(self):
        rng = make_rng(0)
        ids = sparse_ids(4, rng)
        net = SyncNetwork(seed=0)
        AgreementMonitor(event="consensus-decide").attach(net.trace)
        for index, node_id in enumerate(ids):
            net.add_correct(node_id, EarlyConsensus(index % 2))
        net.run(40)  # must not raise


class TestRelayMonitor:
    def test_raises_on_late_acceptance(self):
        trace = Trace()
        RelayMonitor().attach(trace)
        trace.record(3, 1, "accept", {"tag": ("m", 9)})
        trace.record(4, 2, "accept", {"tag": ("m", 9)})  # within window
        with pytest.raises(PropertyViolation, match="relay broken"):
            trace.record(6, 3, "accept", {"tag": ("m", 9)})

    def test_tags_independent(self):
        trace = Trace()
        RelayMonitor().attach(trace)
        trace.record(3, 1, "accept", {"tag": "a"})
        trace.record(9, 2, "accept", {"tag": "b"})  # different tag: fine

    def test_live_reliable_broadcast_is_clean(self):
        rng = make_rng(1)
        ids = sparse_ids(5, rng)
        sender = ids[0]
        net = SyncNetwork(seed=1)
        RelayMonitor().attach(net.trace)
        for node_id in ids:
            net.add_correct(
                node_id,
                ReliableBroadcast(
                    sender, "m" if node_id == sender else None
                ),
            )
        net.run(8, until_all_halted=False)


class TestBoundMonitor:
    def test_raises_outside_interval(self):
        trace = Trace()
        BoundMonitor("approx-iterate", "estimate", 0.0, 10.0).attach(trace)
        trace.record(2, 1, "approx-iterate", {"estimate": 5.0})
        with pytest.raises(PropertyViolation, match="outside"):
            trace.record(3, 1, "approx-iterate", {"estimate": 11.0})

    def test_live_approx_run_respects_lemma_aawithin(self):
        inputs = [2.0, 4.0, 6.0, 8.0, 3.0]
        rng = make_rng(2)
        ids = sparse_ids(5, rng)
        net = SyncNetwork(seed=2)
        BoundMonitor(
            "approx-iterate", "estimate", min(inputs), max(inputs)
        ).attach(net.trace)
        for index, node_id in enumerate(ids):
            net.add_correct(
                node_id,
                IteratedApproximateAgreement(inputs[index], iterations=5),
            )
        net.run(10)

    def test_missing_field_ignored(self):
        trace = Trace()
        BoundMonitor("e", "x", 0, 1).attach(trace)
        trace.record(1, 1, "e", {})  # no field: no raise
