"""Tests for stats aggregation, sweeps, and table rendering."""

import json
from dataclasses import replace

import pytest

from repro.analysis.report import format_table
from repro.analysis.stats import summarize_runs
from repro.analysis.sweep import sweep
from repro.scenario import RunSpec
from repro.sim.metrics import Metrics
from repro.sim.runner import ScenarioResult
from repro.sim.trace import Trace


def result_with(rounds, sends):
    metrics = Metrics()
    metrics.rounds = rounds
    metrics.sends_total = sends
    return ScenarioResult(
        network=None,
        correct_ids=[1],
        byzantine_ids=[],
        rounds=rounds,
        outputs={1: 0},
        metrics=metrics,
        trace=Trace(),
    )


class TestStats:
    def test_summary_values(self):
        stats = summarize_runs(
            [result_with(10, 100), result_with(20, 300)]
        )
        assert stats.runs == 2
        assert stats.rounds_mean == 15
        assert stats.rounds_max == 20
        assert stats.sends_mean == 200
        assert stats.success_rate == 1.0

    def test_success_rate(self):
        stats = summarize_runs(
            [result_with(1, 1), result_with(1, 1)], [True, False]
        )
        assert stats.success_rate == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_mismatched_successes_raises(self):
        with pytest.raises(ValueError):
            summarize_runs([result_with(1, 1)], [True, False])

    def test_as_row_keys(self):
        row = summarize_runs([result_with(5, 50)]).as_row()
        assert {"runs", "ok%", "rounds(mean)", "msgs(mean)"} <= set(row)


class TestSweep:
    def build(self, point, seed):
        return RunSpec(
            protocol="consensus",
            n=4,
            inputs=f"constant:{json.dumps(point)}",
            seed=seed,
            max_rounds=50,
        )

    def test_rows_per_point(self):
        outcome = sweep(
            points=[0, 1],
            build=self.build,
            judge=lambda r: r.agreed,
            seeds=range(3),
        )
        assert len(outcome.rows) == 2
        assert all(row["ok%"] == 100.0 for row in outcome.rows)

    def test_judge_failures_counted(self):
        outcome = sweep(
            points=[0],
            build=self.build,
            judge=lambda r: False,
            seeds=range(2),
        )
        assert outcome.rows[0]["ok%"] == 0.0
        assert outcome.failures[0]

    def test_liveness_failures_counted_not_raised(self):
        def tiny_budget(point, seed):
            # one round cannot possibly finish
            return replace(self.build(point, seed), max_rounds=1)

        outcome = sweep(
            points=["x"],
            build=tiny_budget,
            judge=lambda r: True,
            seeds=range(2),
        )
        assert outcome.rows[0]["ok%"] == 0.0
        assert len(outcome.failures["x"]) == 2

    def test_crash_is_failure_false_propagates(self):
        import pytest as _pytest

        from repro.errors import SimulationError

        def tiny_budget(point, seed):
            return replace(self.build(point, seed), max_rounds=1)

        with _pytest.raises(SimulationError):
            sweep(
                points=["x"],
                build=tiny_budget,
                judge=lambda r: True,
                seeds=range(1),
                crash_is_failure=False,
            )

    def test_row_for(self):
        outcome = sweep(
            points=[7],
            build=self.build,
            judge=lambda r: True,
            seeds=range(1),
        )
        assert outcome.row_for(7)["point"] == 7
        with pytest.raises(KeyError):
            outcome.row_for(8)


class TestSparkline:
    def test_monotone_series(self):
        from repro.analysis.report import sparkline

        text = sparkline([8, 4, 2, 1, 0.5, 0.25])
        assert text[0] == "█"
        assert text[-1] == "▁"
        assert len(text) == 6

    def test_flat_series(self):
        from repro.analysis.report import sparkline

        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        from repro.analysis.report import sparkline

        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        from repro.analysis.report import sparkline

        # with a wider explicit range, mid values render lower
        free = sparkline([0, 5, 10])
        clamped = sparkline([0, 5, 10], lo=0, hi=100)
        assert free[-1] == "█"
        assert clamped[-1] != "█"


class TestReport:
    def test_renders_markdown_table(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        assert "## T" in text
        assert "| a " in text
        assert "| 22" in text

    def test_column_subset_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_rows(self):
        assert "(no data)" in format_table([], title="T")

    def test_float_formatting(self):
        text = format_table([{"v": 0.5}])
        assert "0.5" in text
