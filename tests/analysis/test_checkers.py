"""Tests for the property checkers (including that they can fail)."""

import pytest

from repro.analysis.checkers import (
    CheckReport,
    check_agreement,
    check_approx_agreement,
    check_chain_prefix,
    check_validity,
)
from repro.errors import PropertyViolation
from repro.sim.metrics import Metrics
from repro.sim.runner import ScenarioResult
from repro.sim.trace import Trace


def fake_result(correct_ids, outputs):
    return ScenarioResult(
        network=None,
        correct_ids=list(correct_ids),
        byzantine_ids=[],
        rounds=1,
        outputs=dict(outputs),
        metrics=Metrics(),
        trace=Trace(),
        protocols={},
    )


class TestCheckReport:
    def test_ok_when_no_violations(self):
        assert CheckReport("x").ok

    def test_raise_if_failed(self):
        report = CheckReport("x")
        report.add("broken")
        with pytest.raises(PropertyViolation):
            report.raise_if_failed()

    def test_raise_if_failed_passes_through_when_ok(self):
        report = CheckReport("x")
        assert report.raise_if_failed() is report

    def test_merged(self):
        a, b = CheckReport("a"), CheckReport("b")
        a.add("va")
        merged = a.merged_with(b)
        assert merged.violations == ["va"]


class TestAgreement:
    def test_accepts_unanimous(self):
        result = fake_result([1, 2], {1: "v", 2: "v"})
        assert check_agreement(result).ok

    def test_rejects_conflict(self):
        result = fake_result([1, 2], {1: "v", 2: "w"})
        assert not check_agreement(result).ok

    def test_rejects_missing_decision(self):
        result = fake_result([1, 2], {1: "v"})
        report = check_agreement(result)
        assert not report.ok
        assert "never decided" in report.violations[0]


class TestValidity:
    def test_accepts_valid_output(self):
        result = fake_result([1, 2], {1: 0, 2: 0})
        assert check_validity(result, [0, 1]).ok

    def test_rejects_fabricated_output(self):
        result = fake_result([1], {1: 9})
        assert not check_validity(result, [0, 1]).ok

    def test_unanimous_inputs_pin_the_output(self):
        result = fake_result([1], {1: 0})
        # inputs unanimous on 1, output 0 -> invalid twice over
        report = check_validity(result, [1, 1])
        assert not report.ok


class TestApprox:
    def test_accepts_contained_and_halved(self):
        result = fake_result([1, 2], {1: 4.0, 2: 5.0})
        assert check_approx_agreement(result, [0.0, 10.0]).ok

    def test_rejects_escape(self):
        result = fake_result([1], {1: 11.0})
        assert not check_approx_agreement(result, [0.0, 10.0]).ok

    def test_rejects_insufficient_shrink(self):
        result = fake_result([1, 2], {1: 0.0, 2: 9.0})
        assert not check_approx_agreement(result, [0.0, 10.0]).ok

    def test_halving_optional(self):
        result = fake_result([1, 2], {1: 0.0, 2: 9.0})
        assert check_approx_agreement(
            result, [0.0, 10.0], expect_halving=False
        ).ok

    def test_zero_input_range(self):
        result = fake_result([1, 2], {1: 5.0, 2: 5.0})
        assert check_approx_agreement(result, [5.0, 5.0]).ok


class TestChainPrefix:
    def test_identical_chains_pass(self):
        chain = [(1, 9, "a"), (2, 8, "b")]
        assert check_chain_prefix({1: list(chain), 2: list(chain)}).ok

    def test_prefix_passes(self):
        long = [(1, 9, "a"), (2, 8, "b"), (3, 9, "c")]
        assert check_chain_prefix({1: long, 2: long[:2]}).ok

    def test_divergence_fails(self):
        a = [(1, 9, "a"), (2, 8, "b")]
        b = [(1, 9, "a"), (2, 8, "X")]
        assert not check_chain_prefix({1: a, 2: b}).ok

    def test_joiner_suffix_passes(self):
        veteran = [(1, 9, "a"), (2, 8, "b"), (3, 9, "c")]
        joiner = [(2, 8, "b"), (3, 9, "c")]
        assert check_chain_prefix({1: veteran, 2: joiner}).ok

    def test_empty_chains_pass(self):
        assert check_chain_prefix({}).ok
        assert check_chain_prefix({1: [], 2: []}).ok
