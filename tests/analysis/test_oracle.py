"""Oracle comparison: sampled consensus vs full-broadcast consensus."""

from repro.analysis.oracle import (
    OracleReport,
    OracleVerdict,
    alternating_inputs,
    check_sampled_agreement,
    compare_with_oracle,
    supermajority_inputs,
)


class TestInputAssignments:
    def test_supermajority_is_seven_to_one(self):
        values = [supermajority_inputs("x", i) for i in range(80)]
        assert values.count(0) == 70
        assert values.count(1) == 10

    def test_alternating_is_even(self):
        values = [alternating_inputs("x", i) for i in range(80)]
        assert values.count(0) == values.count(1) == 40


class TestCompareWithOracle:
    def test_sampled_matches_oracle_and_costs_less(self):
        verdict = compare_with_oracle(120, seed=0)
        assert verdict.agree
        assert verdict.oracle_outcome == 0
        assert verdict.sampled_outcome == 0
        # The committee (98 of 120) already shaves broadcast traffic
        # at this small population; the gap widens with n.
        assert verdict.sampled_sends < verdict.oracle_sends

    def test_degenerate_population_always_agrees(self):
        # Below the polylog threshold the committee is everyone, so
        # the comparison is near-tautological — but must still pass.
        verdict = compare_with_oracle(40, seed=3)
        assert verdict.agree


class TestCheckSampledAgreement:
    def test_explicit_seed_sequence(self):
        report = check_sampled_agreement(120, seeds=[0, 1, 2])
        assert isinstance(report, OracleReport)
        assert report.population == 120
        assert report.seeds_checked == 3
        assert report.all_agree
        assert report.disagreements == ()
        assert report.summary() == {
            "population": 120,
            "seeds_checked": 3,
            "all_agree": True,
            "disagreements": [],
        }

    def test_int_seeds_means_range(self):
        report = check_sampled_agreement(40, seeds=2)
        assert [v.seed for v in report.verdicts] == [0, 1]


class TestVerdictShape:
    def test_disagreement_is_reported_not_raised(self):
        bad = OracleVerdict(
            seed=9,
            oracle_outcome=0,
            sampled_outcome=1,
            sampled_rounds=12,
            oracle_sends=100,
            sampled_sends=50,
        )
        good = OracleVerdict(
            seed=10,
            oracle_outcome=0,
            sampled_outcome=0,
            sampled_rounds=12,
            oracle_sends=100,
            sampled_sends=50,
        )
        assert not bad.agree
        report = OracleReport(population=10, verdicts=(bad, good))
        assert not report.all_agree
        assert report.summary()["disagreements"] == [9]
