"""Shared fixtures for the lint-suite tests.

``lint_tree`` materializes a fake source tree (paths mimic the
``repro/<layer>/...`` layout, which is how rules scope themselves) and
runs the full rule set over it.  ``lint_cli`` runs the real
``python -m repro.lint`` subprocess for exit-code and formatting tests.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import all_program_rules, all_rules, run_paths
from repro.lint.baseline import Baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


@pytest.fixture
def lint_tree(tmp_path):
    """Lint a dict of {relative path: source} and return the result."""

    def _lint(files, select=None, baseline=None, program=True):
        root = write_tree(tmp_path / "tree", files)
        rules = all_rules()
        program_rules = all_program_rules() if program else []
        if select is not None:
            wanted = set(select)
            rules = [rule for rule in rules if rule.code in wanted]
            program_rules = [
                rule for rule in program_rules if rule.code in wanted
            ]
        return run_paths(
            [root],
            rules,
            baseline=baseline or Baseline(),
            program_rules=program_rules,
        )

    return _lint


@pytest.fixture
def lint_cli():
    """Run ``python -m repro.lint`` and return the CompletedProcess."""

    def _run(*args, cwd=REPO_ROOT):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *map(str, args)],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
        )

    return _run
