# Seeded R601 positives: global membership knowledge entering core/
# through call chains, never through a syntactic read R102 could see.
from repro.sim.exports import exported_roster
from repro.sim.surface import roster_frozen


def learn(api):
    # R601: two hops (re-export -> alias -> attribute read).
    peers = exported_roster(api)
    return peers


def snapshot(api):
    # R601: container hop (frozenset of the roster).
    return roster_frozen(api)


def tally(count, voters):
    # 'voters' deliberately avoids the R103 population-parameter names:
    # only the *flow* gives this away, which is R601's job.
    return count >= len(voters)


def heard_enough(inbox, n_v):
    # Clean: message-derived ids only, integer quorum math.
    count = len(sorted(inbox.senders("ECHO")))
    return 3 * count >= n_v
