# Membership sources in the runtime layer.  Reading them HERE is legal
# (sim code owns the global view); R601 fires where the values cross
# into core/.


def roster(net):
    return net.node_ids


def roster_alias(net):
    # One extra hop through a local alias.
    peers = roster(net)
    return peers


def roster_frozen(net):
    # Container hop: the frozenset still carries the knowledge.
    return frozenset(roster(net))
