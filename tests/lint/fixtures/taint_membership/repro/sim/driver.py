# The third direction: runtime code handing the global view to core.
from repro.core.proto import tally
from repro.sim.surface import roster


def kick(net, count):
    # R601: membership-tainted argument into a core function.
    return tally(count, roster(net))


def kick_clean(count, n_v):
    # Clean: exact integers only.
    return tally(count, [n_v])
