# Re-export indirection: resolution must follow this chain.
from repro.sim.surface import roster_alias as exported_roster

__all__ = ["exported_roster"]
