# No-false-positive corpus: the idioms the real core/ tree actually
# uses, every one of which must stay silent under the program passes.


BOTTOM = object()
KIND_ABSENT = "ABSENT"
KIND_PRESENT = "PRESENT"


class ViewTracker:
    """frozenset-membership view built from received messages only."""

    def __init__(self):
        self._seen = set()

    def observe(self, sender):
        self._seen.add(sender)

    def freeze(self) -> frozenset:
        return frozenset(self._seen)

    def count(self) -> int:
        return len(self._seen)


def commutative_removal(inbox, participants):
    # The pattern behind total_order's R304 suppressions: set.discard
    # in a loop over an unordered view is order-free.
    for leaver in inbox.senders(KIND_ABSENT):
        participants.discard(leaver)
    for joiner in sorted(inbox.senders(KIND_PRESENT)):
        participants.add(joiner)


def vote_accumulation(index, votes):
    # parallel_consensus's pattern: setdefault(...).add is commutative.
    for sender in index.sender_set(KIND_ABSENT):
        votes.setdefault(BOTTOM, set()).add(sender)
    return votes


def best(base):
    # Tie-broken selection: the explicit key= makes the order total.
    return max(
        base.items(),
        key=lambda kv: (len(kv[1]), repr(kv[0])),
    )


def integer_quorum(count, n_v):
    # The sanctioned exact threshold forms.
    return 3 * count >= n_v and not (3 * count < n_v)


def derived_views(index):
    # Shared InboxIndex.derive views: restriction preserves sharing and
    # stays inside the inbox abstraction.
    echoes = index.derive(KIND_PRESENT)
    return echoes.distinct_count()


def tally_from_messages(inbox, n_v):
    tracker = ViewTracker()
    for message in inbox:
        tracker.observe(message.sender)
    return 3 * tracker.count() >= n_v
