# Runtime-layer code is allowed the global view and real-valued math —
# none of this may leak findings as long as it stays on this side.


def population(net):
    return len(net.node_ids)


def drop_rate(delivered, offered):
    # Float math is fine here: it never reaches a core comparison.
    if offered == 0:
        return 0.0
    return delivered / offered


def fan_out(net, payload):
    # Iteration order over the global set is the runtime's business;
    # R603 only polices core/ and baselines/.
    for node in sorted(net.node_ids):
        node.deliver(payload)
