# Seeded R602 positives: float taint reaching count-like comparisons
# through call chains R201/R203 cannot see.
from repro.sim.mathutil import passthrough, scaled, third


def meets(count, limit):
    # The sink: 'limit' becomes a sink parameter because it is compared
    # against a count here.
    return count >= limit


def check_call_borne(count, total):
    # R602: the float is born one call away (total / 3 in sim).
    return count >= third(total)


def check_two_hops(count, total):
    # R602: float() -> passthrough() -> local name -> comparison.
    limit = passthrough(scaled(total))
    return count >= limit


def check_sink_param(count, total):
    # R602: reported at the call site feeding the sink parameter.
    return meets(count, third(total))


def clean_exact(count, n_v):
    # Clean: the sanctioned integer form.
    return 3 * count >= n_v


def clean_value_math(value, midpoint):
    # Clean: real-valued math on non-count operands (approximate
    # agreement style) is out of scope by the count-like guard.
    return value >= midpoint
