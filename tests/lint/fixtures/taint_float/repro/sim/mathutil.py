# Float producers living outside the protocol layer.  R2xx never sees
# them; R602 follows the values to the comparisons that matter.


def third(total):
    return total / 3


def scaled(total):
    return float(total)


def passthrough(x):
    return x
