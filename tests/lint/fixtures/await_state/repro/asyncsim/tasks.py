# Seeded R701 positives: check-then-act splits across await points.
# Shared-state detection is cross-method — 'queue' only counts as
# mutable because note() appends to it elsewhere in the class.


class Pump:
    def __init__(self):
        self.busy = False
        self.queue = []
        self.round = 0

    def note(self, item):
        self.queue.append(item)

    async def acquire(self):
        # R701: 'busy' checked before the await, written after it.
        if not self.busy:
            await self.pause()
            self.busy = True

    async def drain(self):
        # R701: stale snapshot of shared 'queue' used after the await.
        pending = self.queue
        await self.pause()
        for item in pending:
            self.note(item)

    async def advance(self):
        # R701: read-modify-write of 'round' split across the await.
        current = self.round
        await self.pause()
        self.round = current + 1

    async def safe(self):
        # Clean: the attribute is re-validated after resuming.
        if not self.busy:
            await self.pause()
            if not self.busy:
                self.busy = True

    async def local_only(self, items):
        # Clean: nothing shared crosses the await.
        total = 0
        for item in items:
            total += item
        await self.pause()
        return total

    async def pause(self):
        return None
