# A helper that carries its argument to an order-sensitive sink: its
# second parameter becomes a sink parameter in the fixpoint.


def stash(bucket, item):
    bucket.append(item)


def stash_deep(bucket, item):
    # One more hop on the sink side.
    stash(bucket, item)
