# Seeded R603 positives: set iteration order escaping through sinks the
# syntactic R304 ban could never connect, plus the clean commutative
# and sorted forms that R304 would have needed suppressions for.
from repro.core.sinks import stash_deep
from repro.sim.views import as_iter, sender_view


def build(inbox):
    # R603: the iterable is unordered one call away; .append() inside
    # the loop materializes that order.
    out = []
    for sender in sender_view(inbox):
        out.append(sender)
    return out


def gather(inbox):
    # R603: the loop variable reaches .append() two calls away
    # (stash_deep -> stash -> bucket.append).
    out = []
    for sender in sender_view(inbox):
        stash_deep(out, sender)
    return out


def drain(inbox):
    # R603: yield inside the loop leaks iteration order; the
    # unordered-ness crosses two calls (sender_view -> as_iter).
    for sender in as_iter(sender_view(inbox)):
        yield sender


def commutative(inbox):
    # Clean: a set fold is order-free, no suppression needed.
    seen = set()
    for sender in sender_view(inbox):
        seen.add(sender)
    return len(seen)


def sanitized(inbox):
    # Clean: the built list is sorted before anyone can observe it.
    out = []
    for sender in sender_view(inbox):
        out.append(sender)
    return sorted(out)


def sorted_loop(inbox):
    # Clean: sorting the view imposes a total order first.
    out = []
    for sender in sorted(sender_view(inbox)):
        out.append(sender)
    return out
