# Unordered-view producers: the unordered-ness of these return values
# must survive the call boundary into core/.


def sender_view(inbox):
    return frozenset(inbox.raw())


def as_iter(view):
    # iter() preserves the underlying (unordered) order.
    return iter(view)
