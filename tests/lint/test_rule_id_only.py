"""R1xx — the id-only model rules."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


class TestForbiddenImport:
    def test_network_import_in_core_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                from repro.sim.network import SyncNetwork
                """
            }
        )
        assert codes(result) == ["R101"]

    def test_submodule_prefix_flagged(self, lint_tree):
        result = lint_tree(
            {"repro/core/bad.py": "import repro.net.cluster\n"}
        )
        assert codes(result) == ["R101"]

    def test_sanctioned_imports_pass(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                from repro.sim.inbox import Inbox
                from repro.sim.message import Message
                from repro.sim.node import NodeApi, Protocol
                """
            }
        )
        assert result.ok

    def test_rule_scoped_to_protocol_layers(self, lint_tree):
        # The same import is fine in the adversary layer: Byzantine
        # nodes are omniscient by assumption.
        result = lint_tree(
            {
                "repro/adversary/ok.py": (
                    "from repro.sim.network import AdversaryView\n"
                )
            }
        )
        assert result.ok


class TestGlobalMembershipSurface:
    def test_network_nodes_read_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def peek(network):
                    return len(network.node_ids)
                """
            }
        )
        assert codes(result) == ["R102"]

    def test_config_n_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def quorum(config, count):
                    return 3 * count >= config.n
                """
            }
        )
        assert codes(result) == ["R102"]

    def test_engine_membership_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def spy(network):
                    return network.membership
                """
            }
        )
        assert codes(result) == ["R102"]

    def test_frozen_self_membership_passes(self, lint_tree):
        # The sanctioned pattern: a locally observed view frozen from
        # the ViewTracker (see EarlyConsensus.membership).
        result = lint_tree(
            {
                "repro/core/good.py": """\
                class P:
                    def restrict(self, inbox):
                        return [
                            m for m in inbox if m.sender in self.membership
                        ]
                """
            }
        )
        assert result.ok


class TestKnownPopulationParameter:
    def test_n_and_f_parameters_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                class P:
                    def __init__(self, value, n, f):
                        self.quorum = n - f
                """
            }
        )
        assert codes(result) == ["R103", "R103"]

    def test_n_v_parameter_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def at_least_third(count, n_v):
                    return count > 0 and 3 * count >= n_v
                """
            }
        )
        assert result.ok


class TestSeededViolationCli:
    def test_id_only_violation_fails_with_location(
        self, lint_cli, tmp_path
    ):
        bad = tmp_path / "repro" / "core" / "sneaky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def count_everyone(network):\n"
            "    return len(network.nodes)\n",
            encoding="utf-8",
        )
        proc = lint_cli(tmp_path, "--no-baseline")
        assert proc.returncode == 1
        assert "sneaky.py:2:" in proc.stdout
        assert "R102" in proc.stdout
