"""R5xx — event-plane discipline rules."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


class TestEventPlaneBypass:
    def test_obs_import_flagged(self, lint_tree):
        result = lint_tree(
            {"repro/core/bad.py": "from repro.obs import EventBus\n"},
            select=["R501"],
        )
        assert codes(result) == ["R501"]

    def test_obs_submodule_import_flagged(self, lint_tree):
        result = lint_tree(
            {"repro/baselines/bad.py": "import repro.obs.bus\n"},
            select=["R501"],
        )
        assert codes(result) == ["R501"]

    def test_trace_import_flagged(self, lint_tree):
        result = lint_tree(
            {"repro/core/bad.py": "from repro.sim.trace import Trace\n"},
            select=["R501"],
        )
        assert codes(result) == ["R501"]

    def test_metrics_construction_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def sneak():
                    return Metrics()
                """
            },
            select=["R501"],
        )
        assert codes(result) == ["R501"]

    def test_plumbing_name_from_other_module_flagged(self, lint_tree):
        result = lint_tree(
            {"repro/core/bad.py": "from somewhere import EventBus\n"},
            select=["R501"],
        )
        assert codes(result) == ["R501"]

    def test_api_emit_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def on_round(self, api, inbox):
                    api.emit("accept", tag="t")
                """
            },
            select=["R501"],
        )
        assert result.ok

    def test_runtime_layers_may_use_plumbing(self, lint_tree):
        source = """\
        from repro.obs import EventBus
        from repro.sim.metrics import Metrics

        def wire():
            return Metrics().attach(EventBus())
        """
        result = lint_tree(
            {
                "repro/sim/ok.py": source,
                "repro/net/ok.py": source,
                "repro/analysis/ok.py": source,
            },
            select=["R501"],
        )
        assert result.ok


class TestTraceSinkIsPrivate:
    def test_trace_sink_attribute_flagged_r402(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def hijack(self, api):
                    api._trace_sink(0, 0, "fake", {})
                """
            },
            select=["R402"],
        )
        assert codes(result) == ["R402"]
