"""R603 — unordered-iteration escape analysis (the R304 replacement)."""

from __future__ import annotations

from repro.lint import all_program_rules, all_rules, run_paths
from repro.lint.baseline import Baseline

from .conftest import FIXTURES


def _lint(root):
    return run_paths(
        [root],
        all_rules(),
        baseline=Baseline(),
        program_rules=all_program_rules(),
    )


def _r603(result):
    return [d for d in result.diagnostics if d.code == "R603"]


class TestUnorderedEscape:
    def test_three_interprocedural_positives(self):
        result = _lint(FIXTURES / "order_escape")
        found = _r603(result)
        assert len(found) == 3
        assert {d.code for d in result.diagnostics} == {"R603"}

    def test_append_escape_with_unorderedness_from_callee(self):
        # The iterable's unordered-ness comes from sender_view(), one
        # call away; the .append() inside the loop is the escape.
        result = _lint(FIXTURES / "order_escape")
        assert any(
            d.line == 13 and ".append()" in d.message
            for d in _r603(result)
        )

    def test_call_mediated_sink_two_hops(self):
        # stash_deep -> stash -> bucket.append: the loop variable
        # reaches an ordered container two calls away.
        result = _lint(FIXTURES / "order_escape")
        assert any("stash_deep" in d.message for d in _r603(result))

    def test_yield_escape_through_iter_wrapper(self):
        result = _lint(FIXTURES / "order_escape")
        assert any(
            d.line == 30 and "yields" in d.message for d in _r603(result)
        )

    def test_commutative_and_sorted_loops_stay_silent(self):
        # The clean functions in the same file: set folds, post-loop
        # sorted(), and sorted-iterable loops need no suppressions.
        result = _lint(FIXTURES / "order_escape")
        flagged_lines = {d.line for d in _r603(result)}
        assert flagged_lines == {13, 22, 30}

    def test_real_core_suppression_sites_are_clean_under_r603(self):
        # total_order/parallel_consensus carry R304 suppressions for
        # commutative set ops; R603's escape reasoning needs none.
        result = _lint(FIXTURES / "clean_corpus")
        assert not _r603(result)


class TestSupersession:
    def test_r304_skipped_when_r603_active(self, lint_tree):
        files = {
            "repro/core/bad.py": """\
            def first(inbox):
                for sender in set(inbox.raw()):
                    return sender
            """
        }
        with_program = lint_tree(files)
        assert {d.code for d in with_program.diagnostics} == {"R603"}

    def test_r304_still_runs_without_program_passes(self, lint_tree):
        files = {
            "repro/core/bad.py": """\
            def first(inbox):
                for sender in set(inbox.raw()):
                    return sender
            """
        }
        without = lint_tree(files, program=False)
        assert {d.code for d in without.diagnostics} == {"R304"}

    def test_selector_tie_check_carried_over(self, lint_tree):
        # max() without key= over an unordered view: R304's other half
        # must survive in R603.
        files = {
            "repro/core/bad.py": """\
            def leader(votes):
                return max(votes.keys())
            """
        }
        result = lint_tree(files)
        assert {d.code for d in result.diagnostics} == {"R603"}

    def test_selector_with_key_stays_silent(self, lint_tree):
        files = {
            "repro/core/good.py": """\
            def leader(votes):
                return max(votes.items(), key=lambda kv: (len(kv[1]),))
            """
        }
        assert lint_tree(files).ok
