"""The repository itself must satisfy its own invariants (tier-1).

This is the enforcement test the ISSUE asks for: ``python -m repro.lint
src`` exits 0 against the committed baseline, every inline suppression
carries a justification, and the baseline only contains the
grandfathered known-``n``/``f`` baseline findings.
"""

from __future__ import annotations

import json

from repro.lint import (
    Diagnostic,
    all_program_rules,
    all_rules,
    run_paths,
)
from repro.lint.baseline import Baseline
from repro.lint.engine import discover_files, load_context
from repro.lint.suppressions import parse_suppressions

from .conftest import REPO_ROOT

SRC = REPO_ROOT / "src"
BENCHMARKS = REPO_ROOT / "benchmarks"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_src_is_clean_against_committed_baseline():
    # Program passes on: the acceptance bar is zero findings outside
    # the committed baseline with R6xx/R7xx enabled by default.
    result = run_paths(
        [SRC, BENCHMARKS],
        all_rules(),
        baseline=Baseline.load(BASELINE),
        program_rules=all_program_rules(),
    )
    rendered = "\n".join(d.render() for d in result.diagnostics)
    assert result.ok, f"repro.lint found new violations:\n{rendered}"


def test_src_is_clean_without_program_passes_too():
    # --no-program must stay usable: the per-file rules (including the
    # superseded R304 ban with its inline suppressions) are still green.
    result = run_paths(
        [SRC, BENCHMARKS], all_rules(), baseline=Baseline.load(BASELINE)
    )
    rendered = "\n".join(d.render() for d in result.diagnostics)
    assert result.ok, f"per-file rules found new violations:\n{rendered}"


def test_cli_exits_zero_on_repo(lint_cli):
    proc = lint_cli("src", "benchmarks")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_baseline_only_grandfathers_known_allowances():
    # Two grandfather families only: the literature baselines' known
    # n/f parameters (R103) and the not-yet-ported direct-construction
    # benchmarks (R502 plus their pre-existing determinism findings).
    # New src/ code must never gain a baseline entry.
    data = json.loads(BASELINE.read_text(encoding="utf-8"))
    for entry in data["entries"].values():
        if entry["path"].startswith("repro/baselines/"):
            assert entry["rule"] == "R103", entry
        else:
            assert entry["path"].startswith("benchmarks/"), entry
            assert entry["rule"] in {"R301", "R302", "R502"}, entry


def test_baseline_is_not_stale():
    # Every allowance in the committed baseline must still match a real
    # finding; stale entries would quietly grandfather future bugs.
    raw = run_paths(
        [SRC, BENCHMARKS],
        all_rules(),
        baseline=Baseline(),
        program_rules=all_program_rules(),
    )
    fresh = Baseline.from_diagnostics(raw.diagnostics)
    committed = json.loads(BASELINE.read_text(encoding="utf-8"))["entries"]
    current = {
        fp: entry["count"] for fp, entry in fresh.entries.items()
    }
    for fp, entry in committed.items():
        assert current.get(fp, 0) >= entry["count"], (
            f"stale baseline entry {fp}: {entry}"
        )


def test_every_inline_suppression_is_justified():
    unjustified = []
    for path in discover_files([SRC]):
        ctx = load_context(path)
        if isinstance(ctx, Diagnostic):  # pragma: no cover
            continue
        for sup in ctx.suppressions:
            if not sup.reason:
                unjustified.append(f"{path}:{sup.line}")
    assert not unjustified, (
        "suppressions without '-- justification': "
        + ", ".join(unjustified)
    )


def test_lint_package_does_not_suppress_itself():
    # The checker must not need to exempt its own code; the only
    # directives inside repro.lint are the docstring examples in
    # suppressions.py.
    for path in discover_files([SRC / "repro" / "lint"]):
        if path.name == "suppressions.py":
            continue
        sups = parse_suppressions(path.read_text(encoding="utf-8"))
        assert not sups, f"unexpected suppression in {path}"
