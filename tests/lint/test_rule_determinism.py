"""R3xx — determinism rules."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


class TestDirectRandomImport:
    def test_import_flagged_in_sim(self, lint_tree):
        result = lint_tree({"repro/sim/bad.py": "import random\n"})
        assert codes(result) == ["R301"]

    def test_from_import_flagged(self, lint_tree):
        result = lint_tree(
            {"repro/core/bad.py": "from random import choice\n"}
        )
        assert codes(result) == ["R301"]

    def test_rng_module_is_sanctioned(self, lint_tree):
        result = lint_tree({"repro/sim/rng.py": "import random\n"})
        assert result.ok

    def test_analysis_layer_is_sanctioned(self, lint_tree):
        result = lint_tree({"repro/analysis/boot.py": "import random\n"})
        assert result.ok

    def test_seeded_rng_import_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/good.py": (
                    "from repro.sim.rng import Random, make_rng\n"
                )
            }
        )
        assert result.ok


class TestWallClock:
    def test_time_time_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/bad.py": """\
                import time

                def now():
                    return time.time()
                """
            }
        )
        assert codes(result) == ["R302"]

    def test_datetime_now_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                from datetime import datetime

                def stamp():
                    return datetime.now()
                """
            }
        )
        assert codes(result) == ["R302"]

    def test_net_layer_may_use_wall_clock(self, lint_tree):
        result = lint_tree(
            {
                "repro/net/ok.py": """\
                import time

                def pace():
                    time.sleep(0.01)
                    return time.monotonic()
                """
            }
        )
        assert result.ok

    def test_simulated_time_attribute_passes(self, lint_tree):
        # engine.time / ctx.time are logical clocks, not wall clocks;
        # only calls on the 'time' module are flagged.
        result = lint_tree(
            {
                "repro/asyncsim/good.py": """\
                def when(engine):
                    return engine.time
                """
            }
        )
        assert result.ok


class TestUnseededRandomCall:
    def test_module_level_call_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/bad.py": """\
                import random  # repro-lint: disable=R301 -- isolate R303
                def flip():
                    return random.random() < 0.5
                """
            }
        )
        assert codes(result) == ["R303"]

    def test_seeded_instance_calls_pass(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/good.py": """\
                from repro.sim.rng import make_rng

                def flip(seed):
                    rng = make_rng(seed)
                    return rng.random() < 0.5
                """
            }
        )
        assert result.ok


class TestUnorderedIteration:
    # ``program=False`` pins R304 itself; when the program passes run,
    # R603's escape analysis supersedes it (see test_rule_program_order).
    def test_iterating_fresh_set_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def first_sender(inbox):
                    for sender in set(m.sender for m in inbox):
                        return sender
                """
            },
            program=False,
        )
        assert codes(result) == ["R304"]

    def test_max_over_senders_without_key_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def leader(inbox):
                    return max(inbox.senders())
                """
            },
            program=False,
        )
        assert codes(result) == ["R304"]

    def test_superseded_by_program_pass(self, lint_tree):
        # Same defects, reported by R603 once the program passes run.
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def leader(inbox):
                    return max(inbox.senders())
                """
            }
        )
        assert codes(result) == ["R603"]

    def test_max_with_total_order_key_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def best(votes):
                    return max(
                        votes.items(),
                        key=lambda kv: (len(kv[1]), repr(kv[0])),
                    )
                """
            }
        )
        assert result.ok

    def test_sorted_iteration_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def ordered(inbox):
                    return [s for s in sorted(inbox.senders())]
                """
            }
        )
        assert result.ok


class TestSeededViolationCli:
    def test_random_import_fails_with_location(self, lint_cli, tmp_path):
        bad = tmp_path / "repro" / "sim" / "chaotic.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import os\nimport random\n", encoding="utf-8")
        proc = lint_cli(tmp_path, "--no-baseline")
        assert proc.returncode == 1
        assert "chaotic.py:2:" in proc.stdout
        assert "R301" in proc.stdout
