"""R601/R602 — interprocedural taint, pinned by the fixture corpora.

Every positive here crosses at least one call boundary: the syntactic
R1xx/R2xx rules see nothing in these trees.
"""

from __future__ import annotations

from repro.lint import all_program_rules, all_rules, run_paths
from repro.lint.baseline import Baseline

from .conftest import FIXTURES


def _lint(root, codes=None):
    program = all_program_rules()
    if codes:
        program = [r for r in program if r.code in codes]
    return run_paths(
        [root], all_rules(), baseline=Baseline(), program_rules=program
    )


def _findings(result, code):
    return [d for d in result.diagnostics if d.code == code]


class TestGlobalKnowledgeTaint:
    def test_three_interprocedural_positives(self):
        result = _lint(FIXTURES / "taint_membership")
        found = _findings(result, "R601")
        assert len(found) == 3
        # and nothing else fires on the corpus
        assert {d.code for d in result.diagnostics} == {"R601"}

    def test_flow_through_re_export_chain(self):
        result = _lint(FIXTURES / "taint_membership")
        lines = {
            (d.path.rsplit("/", 1)[-1], d.line): d.message
            for d in _findings(result, "R601")
        }
        assert ("proto.py", 9) in lines  # exported_roster via re-export
        assert "exported_roster" in lines[("proto.py", 9)]

    def test_flow_through_container(self):
        result = _lint(FIXTURES / "taint_membership")
        messages = [d.message for d in _findings(result, "R601")]
        assert any("roster_frozen" in m for m in messages)

    def test_argument_into_core_flagged_at_caller(self):
        result = _lint(FIXTURES / "taint_membership")
        by_file = [
            d
            for d in _findings(result, "R601")
            if d.path.endswith("driver.py")
        ]
        assert len(by_file) == 1
        assert "parameter 'voters'" in by_file[0].message

    def test_clean_core_idioms_stay_silent(self):
        result = _lint(FIXTURES / "clean_corpus")
        assert result.ok


class TestFloatQuorumTaint:
    def test_three_interprocedural_positives(self):
        result = _lint(FIXTURES / "taint_float")
        found = _findings(result, "R602")
        assert len(found) == 3
        assert {d.code for d in result.diagnostics} == {"R602"}

    def test_call_borne_float_reaches_compare(self):
        result = _lint(FIXTURES / "taint_float")
        assert any(
            d.line == 14 and "float-tainted value" in d.message
            for d in _findings(result, "R602")
        )

    def test_two_hop_flow_through_passthrough(self):
        result = _lint(FIXTURES / "taint_float")
        assert any(d.line == 20 for d in _findings(result, "R602"))

    def test_sink_parameter_flagged_at_call_site(self):
        result = _lint(FIXTURES / "taint_float")
        sink = [
            d
            for d in _findings(result, "R602")
            if "reaches a quorum comparison inside" in d.message
        ]
        assert len(sink) == 1
        assert "'meets()'" in sink[0].message

    def test_exact_integer_quorums_stay_silent(self):
        result = _lint(FIXTURES / "clean_corpus")
        assert not _findings(result, "R602")


class TestSyntacticRulesSeeNothing:
    def test_per_file_rules_alone_miss_every_seeded_flow(self):
        # The whole reason for phase two: with the program passes off,
        # these corpora look perfectly clean.
        for corpus in ("taint_membership", "taint_float"):
            result = run_paths(
                [FIXTURES / corpus], all_rules(), baseline=Baseline()
            )
            assert result.ok, corpus
