"""Engine mechanics: layers, suppressions, baseline, output formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import Diagnostic, fingerprint, run_paths
from repro.lint.baseline import Baseline
from repro.lint.engine import layer_of
from repro.lint.rules import all_rules, rules_by_code

VIOLATION = """\
import random
"""


class TestLayerMapping:
    def test_repro_segment_wins(self):
        layer = layer_of(Path("src/repro/core/rotor.py"))
        assert layer == ("core", "rotor.py")

    def test_mimicked_tree(self, tmp_path):
        path = tmp_path / "repro" / "baselines" / "x.py"
        assert layer_of(path) == ("baselines", "x.py")

    def test_known_layer_fallback_without_repro(self):
        assert layer_of(Path("somewhere/core/x.py")) == ("core", "x.py")

    def test_bare_file_has_no_layer(self):
        assert layer_of(Path("script.py")) == ("script.py",)


class TestRegistry:
    def test_codes_are_unique_and_stable(self):
        rules = all_rules()
        codes = [rule.code for rule in rules]
        assert len(codes) == len(set(codes))
        assert {"R101", "R201", "R301", "R401"} <= set(codes)

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.name, rule.code
            assert rule.description, rule.code

    def test_rules_by_code(self):
        assert rules_by_code()["R301"].name == "direct-random-import"


class TestSuppressions:
    def test_same_line_directive(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/x.py": (
                    "import random"
                    "  # repro-lint: disable=R301 -- test fixture\n"
                )
            }
        )
        assert result.ok
        assert result.summary.suppressed == 1

    def test_own_line_directive_guards_next_line(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/x.py": """\
                # repro-lint: disable=R301 -- test fixture
                import random
                """
            }
        )
        assert result.ok
        assert result.summary.suppressed == 1

    def test_own_line_directive_does_not_leak_further(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/x.py": """\
                # repro-lint: disable=R301 -- test fixture
                import os
                import random
                """
            }
        )
        assert [d.code for d in result.diagnostics] == ["R301"]

    def test_wrong_code_does_not_suppress(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/x.py": (
                    "import random  # repro-lint: disable=R999\n"
                )
            }
        )
        assert [d.code for d in result.diagnostics] == ["R301"]

    def test_file_scoped_with_reason(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/x.py": """\
                # repro-lint: disable-file=R301 -- fixture justification
                import random

                import random as r2  # noqa: the directive covers this too
                """
            }
        )
        assert result.ok
        assert result.summary.suppressed == 2

    def test_unjustified_file_directive_reported(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/x.py": """\
                # repro-lint: disable-file=R301
                import random
                """
            }
        )
        assert [d.code for d in result.diagnostics] == ["R001"]

    def test_disable_all_wildcard(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/x.py": (
                    "import random  # repro-lint: disable=all -- fixture\n"
                )
            }
        )
        assert result.ok


class TestBaseline:
    def test_absorbs_exact_multiplicity(self, lint_tree, tmp_path):
        files = {
            "repro/sim/x.py": "import random\n",
            "repro/sim/y.py": "import random\n",
        }
        raw = lint_tree(files)
        assert len(raw.diagnostics) == 2
        baseline = Baseline.from_diagnostics(raw.diagnostics)
        # Re-running the same tree against the generated baseline: the
        # tmp_path changes per fixture use, so rebuild in place.
        clean = run_paths(
            [tmp_path / "tree"], all_rules(), baseline=baseline
        )
        assert clean.ok
        assert clean.summary.baselined == 2

    def test_fingerprint_survives_line_shift(self):
        a = Diagnostic("p.py", 5, 1, "R301", "m", source_line="import random")
        b = Diagnostic("p.py", 50, 9, "R301", "m", source_line="import random")
        assert fingerprint(a) == fingerprint(b)

    def test_fingerprint_changes_with_content(self):
        a = Diagnostic("p.py", 5, 1, "R301", "m", source_line="import random")
        b = Diagnostic(
            "p.py", 5, 1, "R301", "m", source_line="import random as r"
        )
        assert fingerprint(a) != fingerprint(b)

    def test_roundtrip_through_file(self, tmp_path):
        diag = Diagnostic(
            "src/x.py", 3, 1, "R103", "m", source_line="def f(n):"
        )
        path = tmp_path / "baseline.json"
        Baseline.from_diagnostics([diag]).write(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert loaded.absorb(diag)
        assert not loaded.absorb(diag)  # multiplicity is exact

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0


class TestCli:
    def test_clean_tree_exits_zero(self, lint_cli, tmp_path):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        good = tmp_path / "repro" / "core" / "good.py"
        good.write_text("x = 3 * 2 >= 4\n", encoding="utf-8")
        proc = lint_cli(tmp_path, "--no-baseline")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violation_exits_one_with_location(self, lint_cli, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import os\nimport random\n", encoding="utf-8")
        proc = lint_cli(tmp_path, "--no-baseline")
        assert proc.returncode == 1
        assert "bad.py:2:1: R301" in proc.stdout

    def test_json_format(self, lint_cli, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n", encoding="utf-8")
        proc = lint_cli(tmp_path, "--no-baseline", "--format=json")
        payload = json.loads(proc.stdout)
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["code"] == "R301"
        assert payload["findings"][0]["line"] == 1

    def test_syntax_error_is_reported(self, lint_cli, tmp_path):
        bad = tmp_path / "oops.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        proc = lint_cli(bad, "--no-baseline")
        assert proc.returncode == 1
        assert "E001" in proc.stdout

    def test_unknown_path_is_usage_error(self, lint_cli, tmp_path):
        proc = lint_cli(tmp_path / "missing")
        assert proc.returncode == 2

    def test_list_rules(self, lint_cli):
        proc = lint_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("R101", "R203", "R304", "R403"):
            assert code in proc.stdout

    def test_select_subset(self, lint_cli, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n", encoding="utf-8")
        proc = lint_cli(tmp_path, "--no-baseline", "--select=R302")
        assert proc.returncode == 0  # R301 not selected

    def test_write_baseline_then_clean(self, lint_cli, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        wrote = lint_cli(
            tmp_path, "--write-baseline", "--baseline", baseline
        )
        assert wrote.returncode == 0
        clean = lint_cli(tmp_path, "--baseline", baseline)
        assert clean.returncode == 0
        assert "1 baselined" in clean.stdout
