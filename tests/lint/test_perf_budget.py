"""Self-timing budget for the whole-program lint of ``src``.

The program passes must stay cheap enough to run on every commit.  The
committed thresholds carry roughly 10x headroom over the measured cost
(~1.2 s cold, ~1.0 s warm on the reference container, interpreter
startup included) so the test only trips on an algorithmic regression —
an accidental quadratic fixpoint, cache misses on unchanged files —
never on machine noise.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.lint.program.cache import ProgramCache

from .conftest import REPO_ROOT

COLD_BUDGET_SECONDS = 15.0
WARM_BUDGET_SECONDS = 12.0


def _timed_run(cache_path) -> tuple[float, subprocess.CompletedProcess]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            "src",
            "--program-cache",
            str(cache_path),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    return time.perf_counter() - start, proc


def test_full_lint_fits_budget_cold_and_warm(tmp_path):
    cache_path = tmp_path / "facts.json"

    cold, proc = _timed_run(cache_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert cold < COLD_BUDGET_SECONDS, (
        f"cold whole-program lint took {cold:.2f}s "
        f"(budget {COLD_BUDGET_SECONDS}s)"
    )
    assert cache_path.exists(), "run did not persist the facts cache"

    warm, proc = _timed_run(cache_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert warm < WARM_BUDGET_SECONDS, (
        f"warm whole-program lint took {warm:.2f}s "
        f"(budget {WARM_BUDGET_SECONDS}s)"
    )


def test_warm_cache_skips_all_extraction(tmp_path):
    # The budget above tolerates noise; this pins the mechanism — a
    # second run over an unchanged tree must not re-extract anything.
    from repro.lint import all_program_rules, all_rules, run_paths
    from repro.lint.baseline import Baseline

    cache_path = tmp_path / "facts.json"
    baseline = REPO_ROOT / "lint-baseline.json"

    cache = ProgramCache(cache_path)
    run_paths(
        [REPO_ROOT / "src"],
        all_rules(),
        baseline=Baseline.load(baseline),
        program_rules=all_program_rules(),
        cache=cache,
    )
    assert cache.misses > 0 and cache.hits == 0

    warm = ProgramCache(cache_path)
    run_paths(
        [REPO_ROOT / "src"],
        all_rules(),
        baseline=Baseline.load(baseline),
        program_rules=all_program_rules(),
        cache=warm,
    )
    assert warm.misses == 0, "warm run re-extracted unchanged modules"
    assert warm.hits == cache.misses
