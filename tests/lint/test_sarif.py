"""SARIF output: schema shape, stability, and the CLI surface."""

from __future__ import annotations

import json

from repro.lint import all_program_rules, all_rules, format_sarif
from repro.lint.diagnostics import Diagnostic, Summary


def _diag(**overrides):
    base = dict(
        path="src/repro/core/bad.py",
        line=7,
        col=5,
        code="R601",
        message="membership knowledge enters core",
        source_line="peers = roster(net)",
        hint="use message-derived ids",
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestSarifDocument:
    def test_schema_and_version(self):
        doc = json.loads(format_sarif([], Summary()))
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_result_location_and_rule(self):
        doc = json.loads(format_sarif([_diag()], Summary(findings=1)))
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "R601"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/core/bad.py"
        )
        assert location["region"]["startLine"] == 7
        assert location["region"]["startColumn"] == 5
        assert "use message-derived ids" in result["message"]["text"]

    def test_every_registered_rule_documented(self):
        rules = [*all_rules(), *all_program_rules()]
        doc = json.loads(format_sarif([], Summary(), rules=rules))
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"R101", "R304", "R601", "R602", "R603", "R701"} <= ids

    def test_results_sorted_and_deterministic(self):
        diags = [
            _diag(path="src/repro/core/z.py", line=2),
            _diag(path="src/repro/core/a.py", line=9),
            _diag(path="src/repro/core/a.py", line=3),
        ]
        one = format_sarif(diags, Summary())
        two = format_sarif(list(reversed(diags)), Summary())
        assert one == two
        doc = json.loads(one)
        uris = [
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in doc["runs"][0]["results"]
        ]
        assert uris == sorted(uris)

    def test_summary_counters_recorded(self):
        doc = json.loads(
            format_sarif(
                [], Summary(files=94, suppressed=2, baselined=8)
            )
        )
        props = doc["runs"][0]["properties"]
        assert props["files"] == 94
        assert props["baselined"] == 8


class TestSarifCli:
    def test_cli_emits_parseable_sarif(self, lint_cli):
        proc = lint_cli("src", "--format=sarif")
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro.lint"

    def test_json_format_unchanged(self, lint_cli):
        # The machine-readable JSON contract predates SARIF and stays.
        proc = lint_cli("src", "--format=json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert set(payload) == {"findings", "summary"}
        assert set(payload["summary"]) == {
            "files",
            "findings",
            "suppressed",
            "baselined",
            "by_code",
        }
