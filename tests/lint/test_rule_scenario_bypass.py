"""R502 — scenario-layer discipline (run consumers use RunSpec)."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


class TestScenarioLayerBypass:
    def test_benchmark_runner_import_flagged(self, lint_tree):
        result = lint_tree(
            {
                "benchmarks/bench_bad.py": (
                    "from repro.sim.runner import Scenario, run_scenario\n"
                )
            },
            select=["R502"],
        )
        assert codes(result) == ["R502"]

    def test_benchmark_network_import_flagged(self, lint_tree):
        result = lint_tree(
            {
                "benchmarks/bench_bad.py": (
                    "from repro.sim.network import SyncNetwork\n"
                )
            },
            select=["R502"],
        )
        assert codes(result) == ["R502"]

    def test_benchmark_module_import_flagged(self, lint_tree):
        result = lint_tree(
            {"benchmarks/bench_bad.py": "import repro.sim.lossy\n"},
            select=["R502"],
        )
        assert codes(result) == ["R502"]

    def test_benchmark_population_assembly_flagged(self, lint_tree):
        result = lint_tree(
            {
                "benchmarks/bench_bad.py": """\
                def one_run(seed):
                    network = SyncNetwork(seed=seed)
                    network.add_correct(1, object())
                    network.add_byzantine(2, object())
                    return network
                """
            },
            select=["R502"],
        )
        assert codes(result) == ["R502", "R502", "R502"]

    def test_cli_scenario_call_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/cli.py": """\
                def build(args):
                    return Scenario(correct=args.n)
                """
            },
            select=["R502"],
        )
        assert codes(result) == ["R502"]

    def test_benchmark_through_scenario_layer_passes(self, lint_tree):
        result = lint_tree(
            {
                "benchmarks/bench_good.py": """\
                from repro.scenario import RunSpec, run_spec

                def one_run(seed):
                    return run_spec(RunSpec(protocol="consensus", n=7,
                                            seed=seed))
                """
            },
            select=["R502"],
        )
        assert result.ok

    def test_scenario_layer_itself_out_of_scope(self, lint_tree):
        # The scenario package *is* the construction path; the engine
        # and tests exercise it.  None of them are in scope.
        source = """\
        from repro.sim.runner import Scenario, run_scenario

        def build():
            return Scenario(correct=4)
        """
        result = lint_tree(
            {
                "repro/scenario/ok.py": source,
                "repro/sim/ok.py": source,
                "repro/analysis/ok.py": source,
            },
            select=["R502"],
        )
        assert result.ok
