"""R701 — shared state across await points in the async runtime."""

from __future__ import annotations

from repro.lint import all_program_rules, all_rules, run_paths
from repro.lint.baseline import Baseline

from .conftest import FIXTURES


def _lint(root):
    return run_paths(
        [root],
        all_rules(),
        baseline=Baseline(),
        program_rules=all_program_rules(),
    )


def _r701(result):
    return [d for d in result.diagnostics if d.code == "R701"]


class TestAwaitSharedState:
    def test_three_seeded_positives(self):
        result = _lint(FIXTURES / "await_state")
        found = _r701(result)
        assert len(found) == 3
        assert {d.code for d in result.diagnostics} == {"R701"}

    def test_check_then_act_across_await(self):
        result = _lint(FIXTURES / "await_state")
        assert any(
            "'self.busy' was checked before an await" in d.message
            for d in _r701(result)
        )

    def test_stale_snapshot_detected_cross_method(self):
        # 'queue' is only known to be shared because note() mutates it
        # in a *different* method — the shared-attr set spans the class.
        result = _lint(FIXTURES / "await_state")
        assert any(
            "snapshot 'pending' of 'self.queue'" in d.message
            for d in _r701(result)
        )

    def test_read_modify_write_detected(self):
        result = _lint(FIXTURES / "await_state")
        assert any("'self.round'" in d.message for d in _r701(result))

    def test_revalidated_and_local_only_stay_silent(self):
        result = _lint(FIXTURES / "await_state")
        flagged_lines = {d.line for d in _r701(result)}
        # safe() and local_only() contribute nothing
        assert flagged_lines == {19, 25, 32}

    def test_sync_layers_not_checked(self, lint_tree):
        # The same pattern in core/ is not an R701 concern: core code
        # never runs under the cooperative scheduler.
        files = {
            "repro/core/state.py": """\
            class Holder:
                def __init__(self):
                    self.busy = False

                def flip(self):
                    if not self.busy:
                        self.busy = True
            """
        }
        assert lint_tree(files).ok

    def test_immutable_attrs_not_flagged(self, lint_tree):
        # Attributes never mutated anywhere in the class are not
        # shared state; snapshots of them are safe across awaits.
        files = {
            "repro/asyncsim/cfg.py": """\
            class Runner:
                def __init__(self, config):
                    self.config = config
                    self.seen = []

                def mark(self, item):
                    self.seen.append(item)

                async def run(self):
                    cfg = self.config
                    await self.tick()
                    return cfg

                async def tick(self):
                    return None
            """
        }
        assert lint_tree(files).ok

    def test_current_async_runtime_is_clean(self, lint_cli):
        proc = lint_cli("src/repro/asyncsim", "--select", "R701")
        assert proc.returncode == 0, proc.stdout + proc.stderr
