"""R4xx — protocol hygiene rules."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


class TestOutboxInProtocol:
    def test_outbox_import_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": (
                    "from repro.sim.message import Outbox\n"
                )
            }
        )
        assert codes(result) == ["R401"]

    def test_outbox_construction_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def smuggle():
                    return Outbox()
                """
            }
        )
        assert codes(result) == ["R401"]

    def test_message_import_passes(self, lint_tree):
        # Protocols may build Message values for *local* counting (the
        # substitution rule); only the send path is fenced off.
        result = lint_tree(
            {
                "repro/core/good.py": (
                    "from repro.sim.message import Message\n"
                )
            }
        )
        assert result.ok

    def test_sim_layer_may_use_outbox(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/ok.py": """\
                from repro.sim.message import Outbox

                def fresh():
                    return Outbox()
                """
            }
        )
        assert result.ok


class TestPrivateApiAccess:
    def test_outbox_attribute_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def bypass(api, dest, kind):
                    api._outbox.send(dest, kind, None, None)
                """
            }
        )
        assert codes(result) == ["R402"]

    def test_known_contacts_attribute_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def everyone(api):
                    return api._known_contacts
                """
            }
        )
        assert codes(result) == ["R402"]

    def test_public_api_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def greet(api, dest):
                    if api.knows(dest):
                        api.send(dest, "hello")
                    else:
                        api.broadcast("hello")
                """
            }
        )
        assert result.ok


class TestSenderStamping:
    def test_stamped_call_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def forge(send, victim):
                    return send.stamped(victim)
                """
            }
        )
        assert codes(result) == ["R403"]

    def test_network_layer_stamps_freely(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/ok.py": """\
                def deliver(send, sender):
                    return send.stamped(sender)
                """
            }
        )
        assert result.ok


class TestInboxInternalsAccess:
    def test_messages_attribute_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def peek(inbox):
                    return inbox._messages[0]
                """
            }
        )
        assert codes(result) == ["R404"]

    def test_index_attribute_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def steal(inbox):
                    return inbox._index
                """
            }
        )
        assert codes(result) == ["R404"]

    def test_index_cache_chain_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def poison(inbox):
                    inbox.index._by_kind = {}
                """
            }
        )
        assert codes(result) == ["R404"]

    def test_derived_memo_table_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def poke(inbox, key):
                    return inbox.index._derived[key]
                """
            }
        )
        assert codes(result) == ["R404"]

    def test_derived_memo_write_flagged_without_index_chain(
        self, lint_tree
    ):
        # The tally-plane memo tables are fenced by name, so even a
        # build callback holding a bare InboxIndex cannot write them.
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def poison(idx, key, value):
                    idx._derived[key] = value
                """
            }
        )
        assert codes(result) == ["R404"]

    def test_restrictions_cache_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def steal(idx, frozen_view):
                    return idx._restrictions[frozen_view]
                """
            }
        )
        assert codes(result) == ["R404"]

    def test_derive_and_restricted_to_pass(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def count(inbox, frozen_view):
                    box = inbox.restricted_to(frozen_view)
                    return box.derive(
                        ("missing", frozen_view),
                        lambda idx: frozen_view - idx.all_senders,
                    )
                """
            }
        )
        assert result.ok

    def test_query_methods_pass(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def count(inbox, frozen_view):
                    box = inbox.restricted_to(frozen_view)
                    return box.best_payload("input")
                """
            }
        )
        assert result.ok

    def test_own_best_helper_not_confused_with_index_cache(
        self, lint_tree
    ):
        # EarlyConsensus has a _best *method*; only Inbox internals and
        # `.index._xxx` chains are fenced off.
        result = lint_tree(
            {
                "repro/core/good.py": """\
                class Proto:
                    def _best(self, inbox, kind):
                        return inbox.best_payload(kind)

                    def run(self, inbox):
                        return self._best(inbox, "input")
                """
            }
        )
        assert result.ok

    def test_columnar_cols_handle_flagged(self, lint_tree):
        # Fenced by name: even a bare index handle (inside a derive
        # callback, say) cannot reach the column store.
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def peek(idx):
                    return idx._cols.senders
                """
            }
        )
        assert codes(result) == ["R405"]

    def test_index_chain_to_cols_trips_both_fences(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def peek(inbox):
                    return inbox.index._cols.senders
                """
            }
        )
        assert codes(result) == ["R404", "R405"]

    def test_columnar_intern_table_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def poison(plane, payload):
                    plane._payload_ids[payload] = 0
                """
            }
        )
        assert codes(result) == ["R405"]

    def test_columnar_view_via_index_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def raw(inbox):
                    return inbox.index.columns
                """
            }
        )
        assert codes(result) == ["R405"]

    def test_columnar_plane_via_index_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def raw(inbox):
                    return inbox.index.plane
                """
            }
        )
        assert codes(result) == ["R405"]

    def test_plain_columns_name_elsewhere_passes(self, lint_tree):
        # Only the `.index.columns` / `.index.plane` chains are fenced;
        # unrelated attributes with those names stay legal.
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def width(table):
                    return len(table.columns)
                """
            }
        )
        assert result.ok

    def test_sim_layer_may_stage_columns(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/ok.py": """\
                def stage(net, cols):
                    net._cols = cols
                    return cols._materialized
                """
            }
        )
        assert result.ok

    def test_sim_layer_may_touch_internals(self, lint_tree):
        result = lint_tree(
            {
                "repro/sim/ok.py": """\
                def alias(inbox):
                    return inbox._messages
                """
            }
        )
        assert result.ok


class TestSeededViolationCli:
    def test_hygiene_violation_fails_with_location(
        self, lint_cli, tmp_path
    ):
        bad = tmp_path / "repro" / "core" / "forger.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def forge(api, dest):\n"
            "    api._outbox.send(dest, 'x', None, None)\n",
            encoding="utf-8",
        )
        proc = lint_cli(tmp_path, "--no-baseline")
        assert proc.returncode == 1
        assert "forger.py:2:" in proc.stdout
        assert "R402" in proc.stdout
