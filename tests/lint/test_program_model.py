"""The whole-program model: symbols, resolution, call graph, cache."""

from __future__ import annotations

from pathlib import Path

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import load_context
from repro.lint.program import build_program
from repro.lint.program.cache import ProgramCache, content_digest
from repro.lint.program.symbols import module_name_of

from .conftest import FIXTURES, write_tree


def _contexts(root: Path):
    return [
        ctx
        for ctx in (load_context(p) for p in sorted(root.rglob("*.py")))
        if not isinstance(ctx, Diagnostic)
    ]


def _build(root: Path, cache=None):
    return build_program(_contexts(root), cache=cache)


class TestModuleNaming:
    def test_src_layout(self):
        assert (
            module_name_of(Path("src/repro/core/quorum.py"))
            == "repro.core.quorum"
        )

    def test_package_init(self):
        assert module_name_of(Path("src/repro/core/__init__.py")) == (
            "repro.core"
        )

    def test_fixture_layout_matches_real_layout(self, tmp_path):
        nested = tmp_path / "tree" / "repro" / "sim" / "x.py"
        assert module_name_of(nested) == "repro.sim.x"

    def test_bare_file_falls_back_to_stem(self):
        assert module_name_of(Path("scratch.py")) == "scratch"


class TestSymbolsAndCallGraph:
    def test_functions_classes_and_methods_indexed(self):
        model = _build(FIXTURES / "clean_corpus")
        entry = model.modules["repro.core.idioms"]
        assert "ViewTracker" in entry.symbols.classes
        assert "ViewTracker.freeze" in entry.symbols.functions
        assert "integer_quorum" in entry.symbols.functions

    def test_call_graph_resolves_across_re_exports(self):
        # core.proto calls exported_roster, which is a re-export of
        # sim.surface.roster_alias; the edge must land on the original.
        model = _build(FIXTURES / "taint_membership")
        graph = model.call_graph()
        edges = graph["repro.core.proto.learn"]
        assert "repro.sim.surface.roster_alias" in edges

    def test_call_graph_resolves_same_module_helpers(self):
        model = _build(FIXTURES / "taint_membership")
        graph = model.call_graph()
        assert "repro.sim.surface.roster" in graph[
            "repro.sim.surface.roster_alias"
        ]

    def test_import_graph_restricted_to_analyzed_modules(self):
        model = _build(FIXTURES / "taint_membership")
        graph = model.import_graph()
        assert "repro.sim.surface" in graph["repro.sim.exports"]
        # stdlib/unanalyzed imports never show up
        for targets in graph.values():
            assert all(t in model.modules for t in targets)

    def test_method_resolution_through_self(self):
        model = _build(FIXTURES / "clean_corpus")
        graph = model.call_graph()
        callers = graph["repro.core.idioms.tally_from_messages"]
        assert "repro.core.idioms.ViewTracker.observe" in callers
        assert "repro.core.idioms.ViewTracker.count" in callers


class TestFactsCache:
    def test_warm_cache_hits_every_module(self, tmp_path):
        cache_path = tmp_path / "facts.json"
        cache = ProgramCache(cache_path)
        _build(FIXTURES / "clean_corpus", cache=cache)
        assert cache.misses > 0 and cache.hits == 0
        warm = ProgramCache(cache_path)
        _build(FIXTURES / "clean_corpus", cache=warm)
        assert warm.misses == 0
        assert warm.hits == cache.misses

    def test_edit_invalidates_only_that_module(self, tmp_path):
        root = write_tree(
            tmp_path / "tree",
            {
                "repro/core/a.py": "def f():\n    return 1\n",
                "repro/core/b.py": "def g():\n    return 2\n",
            },
        )
        cache_path = tmp_path / "facts.json"
        _build(root, cache=ProgramCache(cache_path))
        edited = root / "repro" / "core" / "a.py"
        edited.write_text("def f():\n    return 3\n", encoding="utf-8")
        warm = ProgramCache(cache_path)
        model = _build(root, cache=warm)
        assert warm.hits == 1 and warm.misses == 1
        # the re-extracted facts reflect the edit
        assert "repro.core.a" in model.modules

    def test_cached_and_fresh_facts_agree(self, tmp_path):
        cache_path = tmp_path / "facts.json"
        cold = _build(FIXTURES / "taint_float", cache=ProgramCache(cache_path))
        warm = _build(
            FIXTURES / "taint_float", cache=ProgramCache(cache_path)
        )
        cold_summary = cold.taint("float").summaries
        warm_summary = warm.taint("float").summaries
        assert cold_summary == warm_summary

    def test_content_digest_changes_with_content(self):
        assert content_digest("a = 1\n") != content_digest("a = 2\n")
