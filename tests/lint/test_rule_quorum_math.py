"""R2xx — integer quorum arithmetic rules."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


class TestFloatDivision:
    def test_division_in_threshold_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def at_least_third(count, n_v):
                    return count >= n_v / 3
                """
            }
        )
        assert codes(result) == ["R201"]

    def test_cross_multiplied_form_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def at_least_third(count, n_v):
                    return count > 0 and 3 * count >= n_v
                """
            }
        )
        assert result.ok

    def test_division_outside_comparison_passes(self, lint_tree):
        # Approximate agreement legitimately averages values; only
        # divisions feeding a comparison are threshold math.
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def midpoint(lo, hi):
                    return (lo + hi) / 2
                """
            }
        )
        assert result.ok

    def test_floor_division_passes(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def half_plus(n_v):
                    return n_v // 2 + 3
                """
            }
        )
        assert result.ok

    def test_rule_scoped_to_protocol_layers(self, lint_tree):
        result = lint_tree(
            {
                "repro/analysis/ok.py": """\
                def rate(hits, total):
                    return 1.0 if hits >= total / 2 else 0.0
                """
            }
        )
        assert result.ok


class TestRounding:
    def test_math_ceil_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                import math

                def quorum(count, n_v):
                    return count >= math.ceil(n_v / 3)
                """
            }
        )
        assert "R202" in codes(result)

    def test_bare_floor_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/baselines/bad.py": """\
                from math import floor

                def quorum(count, votes):
                    return count >= floor(votes * 2 / 3)
                """
            }
        )
        assert "R202" in codes(result)


class TestFractionLiteral:
    def test_two_thirds_literal_flagged(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/bad.py": """\
                def quorum(count, n_v):
                    return count >= 0.66 * n_v
                """
            }
        )
        assert codes(result) == ["R203"]

    def test_zero_and_one_bounds_pass(self, lint_tree):
        result = lint_tree(
            {
                "repro/core/good.py": """\
                def valid(rate):
                    return 0.0 <= rate <= 1.0
                """
            }
        )
        assert result.ok


class TestSeededViolationCli:
    def test_float_threshold_fails_with_location(self, lint_cli, tmp_path):
        bad = tmp_path / "repro" / "core" / "floaty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def accept(count, n_v):\n"
            "    return count >= 2 * n_v / 3\n",
            encoding="utf-8",
        )
        proc = lint_cli(tmp_path, "--no-baseline")
        assert proc.returncode == 1
        assert "floaty.py:2:" in proc.stdout
        assert "R201" in proc.stdout
