"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    PropertyViolation,
    ProtocolViolation,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            PropertyViolation,
            ProtocolViolation,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_round_limit_is_simulation_error(self):
        assert issubclass(RoundLimitExceeded, SimulationError)

    def test_round_limit_carries_details(self):
        err = RoundLimitExceeded(50, [3, 1, 2])
        assert err.limit == 50
        assert err.still_running == [3, 1, 2]
        assert "50" in str(err)
        assert "[1, 2, 3]" in str(err)

    def test_catch_all_with_base(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("nope")
