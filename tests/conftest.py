"""Shared test helpers.

Most protocol tests need the same shape: build a Scenario with some
correct protocol factory and adversary, run it, check properties.  The
helpers here keep individual tests down to the interesting lines.
"""

from __future__ import annotations


import pytest

from repro.sim.rng import make_rng, sparse_ids
from repro.sim.runner import Scenario, run_scenario


def predict_ids(seed: int, correct: int, byzantine: int):
    """Replicate run_scenario's id assignment for a given configuration.

    Returns (correct_ids, byzantine_ids) exactly as the scenario will
    draw them, so tests can name a designated sender up front.
    """
    rng = make_rng(seed)
    ids = sparse_ids(correct + byzantine, rng)
    shuffled = ids[:]
    rng.shuffle(shuffled)
    return sorted(shuffled[:correct]), sorted(shuffled[correct:])


def run_quick(
    correct: int,
    protocol_factory,
    byzantine: int = 0,
    strategy_factory=None,
    seed: int = 0,
    rushing: bool = False,
    max_rounds: int = 400,
    until_all_halted: bool = True,
    membership=None,
    enforce_resiliency: bool = True,
):
    """One-call scenario runner with test-friendly defaults."""
    return run_scenario(
        Scenario(
            correct=correct,
            byzantine=byzantine,
            protocol_factory=protocol_factory,
            strategy_factory=strategy_factory,
            seed=seed,
            rushing=rushing,
            max_rounds=max_rounds,
            until_all_halted=until_all_halted,
            membership=membership,
            enforce_resiliency=enforce_resiliency,
        )
    )


@pytest.fixture
def seeds():
    """The default seed battery for randomized protocol tests."""
    return range(5)
