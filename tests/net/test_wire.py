"""Tests for the wire codec and framing."""

import socket

import pytest

from repro.errors import ProtocolViolation
from repro.net.wire import (
    MAX_FRAME_BYTES,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
)
from repro.types import BOTTOM


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            0,
            1,
            -7,
            3.25,
            "text",
            True,
            ("m", 42),
            (1, (2, (3, None))),
            ("nested", ("⊥-ish", -1.5)),
            frozenset({1, 2, 3}),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bottom_roundtrip_preserves_identity(self):
        assert decode_value(encode_value(BOTTOM)) is BOTTOM

    def test_tuple_inside_frozenset(self):
        value = frozenset({(1, "a"), (2, "b")})
        assert decode_value(encode_value(value)) == value

    def test_rejects_lists(self):
        with pytest.raises(ProtocolViolation):
            encode_value([1, 2])

    def test_rejects_dicts(self):
        with pytest.raises(ProtocolViolation):
            encode_value({"k": 1})

    def test_decoded_tuples_are_hashable(self):
        decoded = decode_value(encode_value((1, (2, 3))))
        assert hash(decoded) == hash((1, (2, 3)))


class TestFrames:
    def test_frame_roundtrip(self):
        frame = encode_frame(7, 42, "prefer", ("x", 1), instance=("to", 3))
        parsed = decode_frame(frame[4:])
        assert parsed == {
            "round": 7,
            "sender": 42,
            "kind": "prefer",
            "payload": ("x", 1),
            "instance": ("to", 3),
        }

    def test_defaults(self):
        parsed = decode_frame(encode_frame(1, 2, "init")[4:])
        assert parsed["payload"] is None
        assert parsed["instance"] is None

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            decode_frame(b'{"round": 1}')

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            decode_frame(b"[1,2]")

    def test_oversized_frame_rejected_at_encode(self):
        with pytest.raises(ProtocolViolation):
            encode_frame(1, 2, "big", "x" * (MAX_FRAME_BYTES + 10))

    def test_read_frame_over_socketpair(self):
        from repro.net.wire import read_frame

        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame(3, 9, "echo", 123))
            parsed = read_frame(b)
            assert parsed["round"] == 3
            assert parsed["payload"] == 123
            a.close()
            assert read_frame(b) is None  # clean EOF
        finally:
            b.close()
