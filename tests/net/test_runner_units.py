"""Unit tests for the lock-step runner (no real time dependence where
avoidable: the peer is real but local, the periods are tiny)."""

import time

from repro.net import LockstepRunner, NetPeer
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol


class EchoProtocol(Protocol):
    def __init__(self):
        super().__init__()
        self.rounds_seen = []
        self.heard = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.rounds_seen.append(api.round)
        self.heard.extend(
            (m.sender, m.kind, m.payload) for m in inbox
        )
        api.broadcast("beat", api.round)
        if api.round >= 4:
            self.decide(api, "done")


class TestLockstepRunner:
    def run_single(self, protocol, period=0.01, max_rounds=10):
        peer = NetPeer(7)
        peer.start([peer.address])
        runner = LockstepRunner(
            peer, protocol, period=period, max_rounds=max_rounds
        )
        try:
            runner.run(time.monotonic())
        finally:
            peer.stop()
        return runner

    def test_rounds_advance_and_stop_on_halt(self):
        protocol = EchoProtocol()
        runner = self.run_single(protocol)
        assert protocol.rounds_seen == [1, 2, 3, 4]
        assert protocol.output == "done"

    def test_self_delivery_with_one_round_latency(self):
        protocol = EchoProtocol()
        self.run_single(protocol)
        # round-1 beat heard in round 2, etc.
        beats = [p for _s, kind, p in protocol.heard if kind == "beat"]
        assert beats == [1, 2, 3]

    def test_max_rounds_cap(self):
        class Forever(Protocol):
            def __init__(self):
                super().__init__()
                self.count = 0

            def on_round(self, api, inbox):
                self.count += 1

        protocol = Forever()
        self.run_single(protocol, max_rounds=6)
        assert protocol.count == 6

    def test_contacts_accumulate(self):
        peer_a, peer_b = NetPeer(1), NetPeer(2)
        book = [peer_a.address, peer_b.address]
        peer_a.start(book)
        peer_b.start(book)
        a = LockstepRunner(peer_a, EchoProtocol(), period=0.02,
                           max_rounds=5)
        b = LockstepRunner(peer_b, EchoProtocol(), period=0.02,
                           max_rounds=5)
        start = time.monotonic() + 0.05
        a.start(start)
        b.start(start)
        a.join(5)
        b.join(5)
        peer_a.stop()
        peer_b.stop()
        assert {1, 2} <= a.contacts
        assert {1, 2} <= b.contacts

    def test_duplicate_frames_collapsed(self):
        peer = NetPeer(3)
        peer.start([peer.address])
        protocol = EchoProtocol()
        runner = LockstepRunner(peer, protocol, period=0.01, max_rounds=3)
        # inject the same frame twice for round 0 before starting
        for _ in range(2):
            peer.send_to(3, 0, "dup", "x")
        try:
            runner.run(time.monotonic())
        finally:
            peer.stop()
        dups = [h for h in protocol.heard if h[1] == "dup"]
        assert len(dups) == 1
