"""Round-window frame hygiene: forged-future and stale stamps drop.

Before this fix, a frame stamped with an arbitrary future round sat in
the peer's queue at face value and was eventually consumed as if
legitimate — an easy poisoning vector for a hostile peer.  With a
shared start instant, honest stamps visible while consuming round
``r - 1`` lie in ``[r - 1, r + 1]``; anything else is purged and
counted, and surfaces as ``drop`` events on the bus.
"""

from __future__ import annotations

import time

from repro.net import LockstepRunner, NetPeer
from repro.obs import EventBus
from repro.sim.node import Protocol


class Listener(Protocol):
    def __init__(self):
        super().__init__()
        self.heard = []

    def on_round(self, api, inbox):
        self.heard.extend((m.kind, m.payload) for m in inbox)
        if api.round >= 4:
            self.decide(api, "done")


class TestPeerWindow:
    def test_take_round_purges_outside_window(self):
        peer = NetPeer(5)
        # loopback injection needs no started sockets
        peer.send_to(5, 1, "stale")
        peer.send_to(5, 3, "current")
        peer.send_to(5, 4, "next")
        peer.send_to(5, 5, "ahead-ok")
        peer.send_to(5, 99, "forged")
        # the runner at round 4 consumes stamps 3 within window [3, 5]
        frames = peer.take_round(3, max_round=5)
        assert [f["kind"] for f in frames] == ["current"]
        assert peer.frames_dropped == 2  # "stale" and "forged"
        # in-window future rounds stay queued
        assert [f["kind"] for f in peer.take_round(4, max_round=6)] == [
            "next"
        ]
        assert [f["kind"] for f in peer.take_round(5, max_round=7)] == [
            "ahead-ok"
        ]
        assert peer.frames_dropped == 2

    def test_take_round_without_max_keeps_future(self):
        peer = NetPeer(5)
        peer.send_to(5, 99, "future")
        assert peer.take_round(3) == []
        assert peer.frames_dropped == 0
        assert len(peer.take_round(99, max_round=100)) == 1


class TestRunnerDropsForgedFrames:
    def run_single(self, preload, max_rounds=5):
        peer = NetPeer(7)
        peer.start([peer.address])
        bus = EventBus()
        drops = []
        bus.subscribe(drops.append, "drop")
        protocol = Listener()
        runner = LockstepRunner(
            peer, protocol, period=0.01, max_rounds=max_rounds, bus=bus
        )
        for round_no, kind in preload:
            peer.send_to(7, round_no, kind)
        try:
            runner.run(time.monotonic())
        finally:
            peer.stop()
        return runner, protocol, drops

    def test_forged_future_frame_never_delivered(self):
        runner, protocol, drops = self.run_single(
            [(50, "forged"), (2, "legit")]
        )
        kinds = [kind for kind, _payload in protocol.heard]
        assert "legit" in kinds
        assert "forged" not in kinds
        assert runner.frames_dropped >= 1
        assert drops and drops[0].reason == "outside-round-window"
        assert sum(d.count for d in drops) == runner.frames_dropped

    def test_clean_run_drops_nothing(self):
        runner, _protocol, drops = self.run_single([])
        assert runner.frames_dropped == 0
        assert drops == []
