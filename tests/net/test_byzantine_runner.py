"""Simulator adversaries attacking TCP clusters via ByzantineRunner."""

import time

from repro.adversary import QuorumSplitterStrategy, RandomNoiseStrategy
from repro.core import EarlyConsensus
from repro.net import ByzantineRunner, LockstepRunner, NetPeer

PERIOD = 0.08  # generous: these tests share the host with the full suite


def attempt_twice(run):
    """Timing-dependent TCP tests get one retry with a slower clock.

    A loaded host can slip a 0.08s round boundary; a genuine protocol
    bug fails deterministically on both attempts."""
    first = run(PERIOD)
    if first is not None:
        return first
    second = run(PERIOD * 2)
    assert second is not None, "failed on both clock rates"
    return second


def run_attacked_cluster(strategy_builder, correct=5, seed=0,
                         period=PERIOD):
    from repro.sim.rng import make_rng, sparse_ids

    rng = make_rng(seed)
    ids = sparse_ids(correct + 1, rng)
    correct_ids, byz_id = ids[:correct], ids[correct]

    peers = {node_id: NetPeer(node_id) for node_id in ids}
    address_book = [peer.address for peer in peers.values()]
    for peer in peers.values():
        peer.start(address_book)

    protocols = {}
    runners = []
    for index, node_id in enumerate(correct_ids):
        protocol = EarlyConsensus(index % 2)
        protocols[node_id] = protocol
        runners.append(
            LockstepRunner(
                peers[node_id], protocol, period=period, max_rounds=80
            )
        )
    byz_runner = ByzantineRunner(
        peers[byz_id],
        strategy_builder(),
        correct_ids=frozenset(correct_ids),
        period=period,
        max_rounds=80,
    )

    start = time.monotonic() + 0.2
    for runner in runners:
        runner.start(start)
    byz_runner.start(start)
    deadline = time.monotonic() + 30
    try:
        while time.monotonic() < deadline:
            if all(p.halted for p in protocols.values()):
                break
            time.sleep(0.02)
    finally:
        for runner in runners:
            runner.join(1.0)
        for peer in peers.values():
            peer.stop()
    return protocols


class TestByzantineOverTcp:
    def test_splitter_cannot_break_agreement(self):
        def run(period):
            protocols = run_attacked_cluster(
                lambda: QuorumSplitterStrategy(EarlyConsensus(0)),
                period=period,
            )
            halted = [p for p in protocols.values() if p.halted]
            if len(halted) < 5:
                return None  # timing slip: retry slower
            return {p.output for p in halted}

        outputs = attempt_twice(run)
        assert len(outputs) == 1

    def test_noise_cannot_break_agreement(self):
        def run(period):
            protocols = run_attacked_cluster(
                lambda: RandomNoiseStrategy(rate=4),
                seed=3,
                period=period,
            )
            halted = [p for p in protocols.values() if p.halted]
            if len(halted) < 5:
                return None
            return {p.output for p in halted}

        outputs = attempt_twice(run)
        assert len(outputs) == 1
