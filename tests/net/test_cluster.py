"""End-to-end tests of the TCP runtime: the same protocols, real sockets.

These use short round periods on localhost; they are timing-dependent by
nature, so assertions stick to safety (agreement/validity) and use
generous round budgets.
"""

import time

import pytest

from repro.core import (
    ApproximateAgreement,
    ByzantineRenaming,
    EarlyConsensus,
    InteractiveConsistency,
)
from repro.net import LocalCluster, NetPeer

PERIOD = 0.06  # generous: a loaded host can slip tighter round clocks


class TestPeer:
    def test_peer_to_peer_delivery(self):
        a, b = NetPeer(1), NetPeer(2)
        book = [a.address, b.address]
        a.start(book)
        b.start(book)
        try:
            assert a.send_to(2, round_no=1, kind="hello", payload=("x", 9))
            deadline = time.monotonic() + 2.0
            frames = []
            while time.monotonic() < deadline and not frames:
                frames = b.take_round(1)
                time.sleep(0.01)
            assert frames and frames[0]["payload"] == ("x", 9)
            assert frames[0]["sender"] == 1
        finally:
            a.stop()
            b.stop()

    def test_loopback_self_delivery(self):
        peer = NetPeer(5)
        peer.start([peer.address])
        try:
            peer.broadcast(round_no=2, kind="note", payload=1)
            assert peer.take_round(2)[0]["sender"] == 5
        finally:
            peer.stop()

    def test_unreachable_destination_reported(self):
        peer = NetPeer(1)
        peer.start([peer.address])
        try:
            assert not peer.send_to(999, 1, "hello")
        finally:
            peer.stop()

    def test_stale_rounds_purged(self):
        peer = NetPeer(1)
        peer.start([peer.address])
        try:
            peer.broadcast(1, "old")
            peer.broadcast(5, "new")
            assert peer.take_round(5)
            assert peer.frames_dropped == 1
        finally:
            peer.stop()


class TestClusterProtocols:
    def test_consensus_unanimous(self):
        cluster = LocalCluster(
            4, lambda nid, i: EarlyConsensus(1), period=PERIOD
        )
        outputs = cluster.run(timeout=15)
        assert len(outputs) == 4
        assert set(outputs.values()) == {1}

    def test_consensus_mixed_inputs(self):
        cluster = LocalCluster(
            5, lambda nid, i: EarlyConsensus(i % 2), period=PERIOD
        )
        outputs = cluster.run(timeout=20)
        assert len(outputs) == 5
        assert len(set(outputs.values())) == 1

    def test_approximate_agreement(self):
        cluster = LocalCluster(
            5,
            lambda nid, i: ApproximateAgreement(float(i)),
            period=PERIOD,
            max_rounds=10,
        )
        outputs = cluster.run(timeout=10)
        values = list(outputs.values())
        assert len(values) == 5
        assert 0.0 <= min(values) <= max(values) <= 4.0
        assert max(values) - min(values) <= 2.0

    def test_renaming(self):
        cluster = LocalCluster(
            5, lambda nid, i: ByzantineRenaming(), period=PERIOD
        )
        outputs = cluster.run(timeout=15)
        assert len(outputs) == 5
        assert len(set(outputs.values())) == 1
        (assignment,) = set(outputs.values())
        assert len(assignment) == 5

    def test_interactive_consistency(self):
        cluster = LocalCluster(
            4, lambda nid, i: InteractiveConsistency(i * 10), period=PERIOD
        )
        outputs = cluster.run(timeout=20)
        assert len(outputs) == 4
        assert len(set(outputs.values())) == 1
        (vector,) = set(outputs.values())
        assert sorted(v for _n, v in vector) == [0, 10, 20, 30]

    def test_byzantine_members_via_cluster_api(self):
        from repro.adversary import QuorumSplitterStrategy
        from repro.core import EarlyConsensus as EC

        cluster = LocalCluster(
            5,
            lambda nid, i: EC(i % 2),
            period=PERIOD,
            byzantine=1,
            strategy_factory=lambda nid, i: QuorumSplitterStrategy(
                EC(0)
            ),
        )
        outputs = cluster.run(timeout=25)
        assert len(outputs) == 5
        assert len(set(outputs.values())) == 1
        assert cluster.byzantine_ids  # the attacker really ran

    def test_byzantine_requires_strategy(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            LocalCluster(
                4, lambda nid, i: EarlyConsensus(0), byzantine=1
            )

    def test_silent_node_tolerated(self):
        """One peer never started (fail-stop before round 1): with
        n = 4 > 3·1 the others still decide."""

        class Never(EarlyConsensus):
            def on_round(self, api, inbox):
                self.halted = True  # sends nothing, ever

        def factory(nid, i):
            return Never(0) if i == 3 else EarlyConsensus(1)

        cluster = LocalCluster(4, factory, period=PERIOD)
        outputs = cluster.run(timeout=20)
        live = {n: v for n, v in outputs.items() if v is not None}
        assert len(live) == 3
        assert set(live.values()) == {1}
