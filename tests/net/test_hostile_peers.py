"""Net-runtime robustness: raw-socket attackers.

A Byzantine node on a real network is not constrained to our peer
implementation — it can open sockets and send arbitrary bytes.  These
tests throw malformed frames, oversized lengths, garbage kinds, and
protocol-shaped-but-hostile traffic at a running cluster; the correct
peers must neither crash nor disagree.
"""

import socket
import struct
import time

from repro.core import EarlyConsensus
from repro.net import LocalCluster, NetPeer
from repro.net.wire import encode_frame

PERIOD = 0.04


def blast(address, payload_bytes):
    """Open a raw connection and send arbitrary bytes."""
    try:
        with socket.create_connection(
            (address.host, address.port), timeout=1.0
        ) as sock:
            sock.sendall(payload_bytes)
            time.sleep(0.02)
    except OSError:
        pass


class TestMalformedTraffic:
    def test_garbage_bytes_do_not_crash_peer(self):
        peer = NetPeer(1)
        peer.start([peer.address])
        try:
            blast(peer.address, b"\x00\x00\x00\x05notjs")
            blast(peer.address, b"complete garbage with no framing")
            peer.broadcast(1, "alive")
            assert peer.take_round(1)  # still serving
        finally:
            peer.stop()

    def test_oversized_length_prefix_closes_connection(self):
        peer = NetPeer(1)
        peer.start([peer.address])
        try:
            blast(peer.address, struct.pack(">I", 1 << 30))
            peer.broadcast(1, "alive")
            assert peer.take_round(1)
        finally:
            peer.stop()

    def test_valid_frame_wrong_schema(self):
        peer = NetPeer(1)
        peer.start([peer.address])
        try:
            body = b'{"round": "x"}'
            blast(peer.address, struct.pack(">I", len(body)) + body)
            peer.broadcast(1, "alive")
            assert peer.take_round(1)
        finally:
            peer.stop()


class HostileConsensusAttacker:
    """A raw-socket Byzantine node: floods every peer with conflicting
    consensus messages stamped for every round."""

    def __init__(self, node_id, addresses):
        self.node_id = node_id
        self.addresses = addresses

    def attack(self, rounds=30):
        for address in self.addresses:
            try:
                with socket.create_connection(
                    (address.host, address.port), timeout=1.0
                ) as sock:
                    for round_no in range(1, rounds):
                        value = round_no % 2
                        for kind in ("init", "input", "prefer",
                                     "strongprefer", "echo"):
                            sock.sendall(
                                encode_frame(
                                    round_no, self.node_id, kind, value
                                )
                            )
            except OSError:
                continue


class TestHostileConsensus:
    def test_consensus_survives_raw_socket_attacker(self):
        cluster = LocalCluster(
            4, lambda nid, i: EarlyConsensus(1), period=PERIOD
        )
        address_book = [p.address for p in cluster.peers.values()]
        for peer in cluster.peers.values():
            peer.start(address_book)
        start = time.monotonic() + 0.2
        for runner in cluster.runners.values():
            runner.start(start)
        # the attacker fires mid-protocol from outside the cluster
        attacker = HostileConsensusAttacker(999999, address_book)
        attacker.attack()
        deadline = time.monotonic() + 20
        try:
            while time.monotonic() < deadline:
                if all(p.halted for p in cluster.protocols.values()):
                    break
                time.sleep(0.02)
            outputs = cluster.outputs()
        finally:
            for runner in cluster.runners.values():
                runner.join(timeout=1.0)
            for peer in cluster.peers.values():
                peer.stop()
        # n_v = 5 (4 real + the attacker), g = 4 > 2·1: safe
        assert len(outputs) == 4
        assert set(outputs.values()) == {1}
