"""Representative scenarios pinned by committed replay recordings.

These four runs — reliable broadcast, rotor, consensus, and parallel
consensus, each under a rushing adversary — are the round engine's
refactor safety net.  Their recordings live in ``tests/data/`` and are
checked by ``tests/integration/test_replay_equivalence.py``: any engine
change that alters a single delivery, output, or round count in any of
them names the first diverging delivery.

None of the scenarios uses a membership schedule, so their recordings
are invariant under the delivery-time broadcast-recipient semantics
(joiners are the only runs the fix intentionally changes).

Regenerate after an *intentional* wire-behaviour change with::

    PYTHONPATH=src python -m tests.replay_scenarios

and document the change in DESIGN.md.
"""

from __future__ import annotations

import pathlib

from repro.adversary import (
    EquivocatorStrategy,
    MembershipLiarStrategy,
    QuorumSplitterStrategy,
)
from repro.core.consensus import EarlyConsensus
from repro.core.parallel_consensus import ParallelConsensus
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.rotor import RotorCoordinator
from repro.sim.runner import Scenario

from tests.conftest import predict_ids

DATA_DIR = pathlib.Path(__file__).parent / "data"


def reliable_broadcast_scenario() -> Scenario:
    correct_ids, _ = predict_ids(11, 6, 2)
    sender = correct_ids[0]
    return Scenario(
        correct=6,
        byzantine=2,
        protocol_factory=lambda nid, i: ReliableBroadcast(
            sender, "m" if nid == sender else None
        ),
        strategy_factory=lambda nid, i: MembershipLiarStrategy(),
        seed=11,
        rushing=True,
        max_rounds=8,
        until_all_halted=False,
    )


def rotor_scenario() -> Scenario:
    return Scenario(
        correct=6,
        byzantine=2,
        protocol_factory=lambda nid, i: RotorCoordinator(opinion=i),
        strategy_factory=lambda nid, i: EquivocatorStrategy(
            RotorCoordinator(opinion=-1)
        ),
        seed=6,
        rushing=True,
        max_rounds=50,
    )


def consensus_scenario() -> Scenario:
    return Scenario(
        correct=5,
        byzantine=1,
        protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
        strategy_factory=lambda nid, i: QuorumSplitterStrategy(
            EarlyConsensus(0)
        ),
        seed=5,
        rushing=True,
        max_rounds=100,
    )


def parallel_consensus_scenario() -> Scenario:
    return Scenario(
        correct=6,
        byzantine=2,
        protocol_factory=lambda nid, i: ParallelConsensus({"k": i % 2}),
        strategy_factory=lambda nid, i: QuorumSplitterStrategy(
            ParallelConsensus({"k": 0})
        ),
        seed=7,
        rushing=True,
        max_rounds=80,
    )


#: name -> zero-argument Scenario builder, one per committed recording.
SCENARIOS = {
    "reliable_broadcast": reliable_broadcast_scenario,
    "rotor": rotor_scenario,
    "consensus": consensus_scenario,
    "parallel_consensus": parallel_consensus_scenario,
}


def recording_path(name: str) -> pathlib.Path:
    return DATA_DIR / f"replay_{name}.jsonl"


def regenerate() -> None:
    from repro.sim.replay import record_scenario

    for name, build in SCENARIOS.items():
        _result, recording = record_scenario(build())
        recording.save(recording_path(name))
        print(
            f"{name}: {recording.rounds} rounds, "
            f"{len(recording.deliveries)} deliveries -> "
            f"{recording_path(name)}"
        )


if __name__ == "__main__":
    regenerate()
