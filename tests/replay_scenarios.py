"""Representative scenarios pinned by committed replay recordings.

These four runs — reliable broadcast, rotor, consensus, and parallel
consensus, each under a rushing adversary — are the round engine's
refactor safety net.  Their recordings live in ``tests/data/`` and are
checked by ``tests/integration/test_replay_equivalence.py``: any engine
change that alters a single delivery, output, or round count in any of
them names the first diverging delivery.

Each scenario is a declarative :class:`~repro.scenario.RunSpec`
materialized through :mod:`repro.scenario` — the same construction path
as the CLI, benchmarks, and campaign runner — so the recordings pin the
scenario layer's wiring (id assignment, input resolution, adversary
wrapping) along with the engine.

None of the scenarios uses a membership schedule, so their recordings
are invariant under the delivery-time broadcast-recipient semantics
(joiners are the only runs the fix intentionally changes).

Regenerate after an *intentional* wire-behaviour change with::

    PYTHONPATH=src python -m tests.replay_scenarios

and document the change in DESIGN.md.
"""

from __future__ import annotations

import pathlib

from repro.scenario import RunSpec, materialize
from repro.sim.runner import Scenario

DATA_DIR = pathlib.Path(__file__).parent / "data"


#: name -> the RunSpec behind each committed recording.
SPECS = {
    "reliable_broadcast": RunSpec(
        protocol="reliable-broadcast",
        n=8,
        f=2,
        protocol_params={"payload": "m"},
        adversary="membership-liar",
        seed=11,
        rushing=True,
        max_rounds=8,
    ),
    "rotor": RunSpec(
        protocol="rotor",
        n=8,
        f=2,
        adversary="equivocator",
        adversary_params={"wrapped_index": -1},
        seed=6,
        rushing=True,
        max_rounds=50,
    ),
    "consensus": RunSpec(
        protocol="consensus",
        n=6,
        f=1,
        adversary="splitter",
        seed=5,
        rushing=True,
        max_rounds=100,
    ),
    "parallel_consensus": RunSpec(
        protocol="parallel",
        n=8,
        f=2,
        adversary="splitter",
        seed=7,
        rushing=True,
        max_rounds=80,
    ),
}


def build_scenario(name: str) -> Scenario:
    return materialize(SPECS[name])


#: name -> zero-argument Scenario builder, one per committed recording.
SCENARIOS = {
    name: (lambda name=name: build_scenario(name)) for name in SPECS
}


def recording_path(name: str) -> pathlib.Path:
    return DATA_DIR / f"replay_{name}.jsonl"


def regenerate() -> None:
    from repro.sim.replay import record_scenario

    for name, build in SCENARIOS.items():
        _result, recording = record_scenario(build())
        recording.save(recording_path(name))
        print(
            f"{name}: {recording.rounds} rounds, "
            f"{len(recording.deliveries)} deliveries -> "
            f"{recording_path(name)}"
        )


if __name__ == "__main__":
    regenerate()
