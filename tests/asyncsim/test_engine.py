"""Tests for the event-driven engine and schedulers."""

import pytest

from repro.asyncsim.engine import (
    AsyncEngine,
    AsyncNode,
)
from repro.asyncsim.schedulers import (
    JitterScheduler,
    PartitionScheduler,
    UniformScheduler,
)
from repro.errors import ConfigurationError


class Pinger(AsyncNode):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_start(self, ctx):
        ctx.broadcast("ping", ctx.node_id)

    def on_message(self, ctx, message):
        self.received.append((ctx.time, message.sender, message.kind))


class TimerNode(AsyncNode):
    def __init__(self, delay):
        super().__init__()
        self.delay = delay
        self.fired_at = None

    def on_start(self, ctx):
        ctx.set_timer(self.delay, "t")

    def on_message(self, ctx, message):
        pass

    def on_timer(self, ctx, tag):
        self.fired_at = ctx.time
        self.decide(ctx, tag)


class TestEngine:
    def test_messages_delivered_with_scheduler_delay(self):
        engine = AsyncEngine(UniformScheduler(2.5))
        a, b = Pinger(), Pinger()
        engine.add_node(1, a)
        engine.add_node(2, b)
        engine.run()
        assert all(t == 2.5 for t, _s, _k in b.received)
        assert {s for _t, s, _k in b.received} == {1, 2}

    def test_broadcast_reaches_self(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        a = Pinger()
        engine.add_node(1, a)
        engine.run()
        assert [s for _t, s, _k in a.received] == [1]

    def test_timer_fires(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        node = TimerNode(4.0)
        engine.add_node(1, node)
        engine.run()
        assert node.fired_at == 4.0
        assert node.decided and node.output == "t"

    def test_run_until_cutoff(self):
        engine = AsyncEngine(UniformScheduler(5.0))
        a, b = Pinger(), Pinger()
        engine.add_node(1, a)
        engine.add_node(2, b)
        engine.run(until=3.0)
        assert b.received == []

    def test_duplicate_node_rejected(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        engine.add_node(1, Pinger())
        with pytest.raises(ConfigurationError):
            engine.add_node(1, Pinger())

    def test_log_records_receives(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        a, b = Pinger(), Pinger()
        engine.add_node(1, a)
        engine.add_node(2, b)
        engine.run()
        assert ("recv", 1, "ping", 1) in b.log

    def test_delivery_count(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        engine.add_node(1, Pinger())
        engine.add_node(2, Pinger())
        engine.run()
        assert engine.delivered == 4  # 2 broadcasts x 2 recipients

    def test_deterministic_ordering(self):
        def run_once():
            engine = AsyncEngine(JitterScheduler(seed=9))
            nodes = [Pinger() for _ in range(4)]
            for index, node in enumerate(nodes):
                engine.add_node(index, node)
            engine.run()
            return [tuple(n.received) for n in nodes]

        assert run_once() == run_once()


class TestSchedulers:
    def test_uniform(self):
        assert UniformScheduler(3.0).delay(1, 2, 0.0, "k") == 3.0

    def test_jitter_bounds_and_determinism(self):
        a = JitterScheduler(1.0, 2.0, seed=4)
        b = JitterScheduler(1.0, 2.0, seed=4)
        values = [a.delay(1, 2, 0.0, "k") for _ in range(50)]
        assert all(1.0 <= v <= 2.0 for v in values)
        assert values == [b.delay(1, 2, 0.0, "k") for _ in range(50)]

    def test_jitter_validates_bounds(self):
        with pytest.raises(ValueError):
            JitterScheduler(3.0, 1.0)

    def test_partition(self):
        scheduler = PartitionScheduler(
            [[1, 2], [3, 4]], within=1.0, cross=99.0
        )
        assert scheduler.delay(1, 2, 0.0, "k") == 1.0
        assert scheduler.delay(3, 4, 0.0, "k") == 1.0
        assert scheduler.delay(1, 3, 0.0, "k") == 99.0
        assert scheduler.delay(4, 2, 0.0, "k") == 99.0
