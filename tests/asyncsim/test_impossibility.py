"""Tests for the §9 impossibility experiments."""

import pytest

from repro.asyncsim import (
    run_async_partition,
    run_semisync_embedding,
)
from repro.asyncsim.engine import AsyncEngine
from repro.asyncsim.naive_consensus import WaitAndMajority
from repro.asyncsim.schedulers import UniformScheduler


class TestNaiveConsensusSanity:
    """The victim must be a *reasonable* algorithm: it works fine when
    delays behave — which is exactly what makes the lemmas bite."""

    def test_agrees_in_a_well_behaved_system(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        for node_id, value in enumerate([1, 1, 0, 1, 0]):
            engine.add_node(node_id, WaitAndMajority(value, patience=5.0))
        engine.run()
        outputs = set(engine.outputs().values())
        assert outputs == {1}

    def test_decides_after_patience(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        engine.add_node(1, WaitAndMajority(0, patience=7.0))
        engine.run()
        assert engine.node(1).decided_at == 7.0

    def test_relaying_routes_around_slow_links(self):
        """The victim gossips: a value whose direct link is slow still
        arrives through a neighbour before the decision timer."""
        from repro.asyncsim.engine import Scheduler

        class SlowDirectLink(Scheduler):
            def delay(self, sender, recipient, time, kind):
                if sender == 1 and recipient == 3:
                    return 100.0  # direct link effectively dead
                return 1.0

        engine = AsyncEngine(SlowDirectLink())
        engine.add_node(1, WaitAndMajority(1, patience=10.0))
        engine.add_node(2, WaitAndMajority(0, patience=10.0))
        engine.add_node(3, WaitAndMajority(0, patience=10.0))
        engine.run(until=50.0)
        node3 = engine.node(3)
        # node 3 heard node 1's value via node 2's relay and the
        # majority includes it
        assert node3._heard.get(1) == 1
        assert engine.outputs()[3] == 0  # majority 0 of {1, 0, 0}

    def test_tie_breaks_deterministically(self):
        def run_once():
            engine = AsyncEngine(UniformScheduler(1.0))
            for node_id, value in enumerate([0, 1]):
                engine.add_node(node_id, WaitAndMajority(value, 5.0))
            engine.run()
            return engine.outputs()

        assert run_once() == run_once()


class TestStabilityDetectorVictim:
    """An adaptive quiet-window scheme fails the lemma identically."""

    def _partitioned_engine(self, quiet=5.0, cross=10**6):
        from repro.asyncsim import StabilityDetector
        from repro.asyncsim.schedulers import PartitionScheduler

        group_a, group_b = [1, 2, 3], [101, 102, 103]
        engine = AsyncEngine(
            PartitionScheduler([group_a, group_b], within=1.0, cross=cross)
        )
        for node_id in group_a:
            engine.add_node(node_id, StabilityDetector(1, quiet))
        for node_id in group_b:
            engine.add_node(node_id, StabilityDetector(0, quiet))
        return engine, group_a, group_b

    def test_works_when_delays_behave(self):
        from repro.asyncsim import StabilityDetector

        engine = AsyncEngine(UniformScheduler(1.0))
        for node_id, value in enumerate([1, 1, 0, 0, 1]):
            engine.add_node(node_id, StabilityDetector(value, 5.0))
        engine.run()
        assert set(engine.outputs().values()) == {1}

    def test_partition_still_defeats_it(self):
        engine, group_a, group_b = self._partitioned_engine()
        engine.run(until=10**5)
        outputs = engine.outputs()
        assert all(outputs[n] == 1 for n in group_a)
        assert all(outputs[n] == 0 for n in group_b)

    def test_longer_quiet_windows_do_not_help(self):
        engine, group_a, group_b = self._partitioned_engine(quiet=500.0)
        engine.run(until=10**5)
        outputs = engine.outputs()
        assert {outputs[n] for n in group_a} == {1}
        assert {outputs[n] for n in group_b} == {0}

    def test_quiet_window_restarts_on_new_participants(self):
        """Sanity for the mechanism itself: a late (but sub-window)
        participant postpones the decision and gets counted."""
        from repro.asyncsim import StabilityDetector
        from repro.asyncsim.engine import Scheduler

        class SlowThird(Scheduler):
            def delay(self, sender, recipient, time, kind):
                return 4.0 if sender == 3 else 1.0

        engine = AsyncEngine(SlowThird())
        engine.add_node(1, StabilityDetector(0, quiet_period=6.0))
        engine.add_node(2, StabilityDetector(0, quiet_period=6.0))
        engine.add_node(3, StabilityDetector(1, quiet_period=6.0))
        engine.run()
        node1 = engine.node(1)
        assert node1._heard.get(3) == 1  # the slow node was awaited


class TestAsyncPartition:
    def test_disagreement_certain_under_partition_schedule(self):
        result = run_async_partition()
        assert result.disagreement

    def test_groups_decide_their_own_inputs(self):
        result = run_async_partition()
        assert all(result.decisions[n] == 1 for n in result.group_a)
        assert all(result.decisions[n] == 0 for n in result.group_b)

    def test_indistinguishable_from_solo_systems(self):
        result = run_async_partition()
        assert result.indistinguishable

    @pytest.mark.parametrize("patience", [1.0, 10.0, 100.0])
    def test_no_patience_escapes(self, patience):
        # Longer waiting does not help: the adversary scales with it.
        result = run_async_partition(patience=patience)
        assert result.disagreement and result.indistinguishable

    @pytest.mark.parametrize("size_a,size_b", [(1, 7), (3, 5), (6, 2)])
    def test_any_partition_shape_works(self, size_a, size_b):
        result = run_async_partition(size_a=size_a, size_b=size_b)
        assert result.disagreement


class TestProbabilisticReading:
    def test_disagreement_rate_tracks_partition_probability(self):
        from repro.asyncsim import estimate_disagreement_probability

        result = estimate_disagreement_probability(
            partition_probability=0.4, runs=40, seed=1
        )
        # each partitioned run disagrees; benign runs do not
        assert abs(result.disagreement_rate - 0.4) < 0.2
        assert result.disagreements > 0

    def test_zero_probability_zero_disagreement(self):
        from repro.asyncsim import estimate_disagreement_probability

        result = estimate_disagreement_probability(
            partition_probability=0.0, runs=10, seed=2
        )
        assert result.disagreement_rate == 0.0

    def test_certain_partition_certain_disagreement(self):
        from repro.asyncsim import estimate_disagreement_probability

        result = estimate_disagreement_probability(
            partition_probability=1.0, runs=10, seed=3
        )
        assert result.disagreement_rate == 1.0


class TestSemiSyncEmbedding:
    def test_disagreement_with_respected_bound(self):
        result = run_semisync_embedding()
        assert result.disagreement
        assert result.bound_respected

    def test_delta_s_dominates_solo_runs(self):
        result = run_semisync_embedding()
        assert result.delta_s > result.delta_a
        assert result.delta_s > result.delta_b
        assert result.delta_s > result.duration_a
        assert result.delta_s > result.duration_b

    def test_indistinguishable_up_to_decision(self):
        result = run_semisync_embedding()
        assert result.indistinguishable

    @pytest.mark.parametrize(
        "delta_a,delta_b", [(0.5, 0.5), (1.0, 3.0), (2.0, 0.25)]
    )
    def test_arbitrary_bounds(self, delta_a, delta_b):
        result = run_semisync_embedding(delta_a=delta_a, delta_b=delta_b)
        assert result.disagreement and result.indistinguishable
