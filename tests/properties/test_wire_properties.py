"""Property-based fuzzing of the wire codec."""

from hypothesis import given, strategies as st

from repro.net.wire import (
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
)
from repro.types import BOTTOM

# Hashable payloads of the shape protocols actually send: scalars,
# strings, BOTTOM, and nested tuples thereof.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.just(BOTTOM),
)
payloads = st.recursive(
    scalars,
    lambda children: st.tuples(children, children)
    | st.tuples(children)
    | st.tuples(children, children, children),
    max_leaves=8,
)


class TestWireProperties:
    @given(value=payloads)
    def test_value_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(value=payloads)
    def test_decoded_values_stay_hashable(self, value):
        decoded = decode_value(encode_value(value))
        hash(decoded)  # must not raise

    @given(
        payload=payloads,
        instance=payloads,
        round_no=st.integers(min_value=0, max_value=10**6),
        sender=st.integers(min_value=0, max_value=10**9),
        kind=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=20,
        ),
    )
    def test_frame_roundtrip(self, payload, instance, round_no, sender, kind):
        frame = encode_frame(round_no, sender, kind, payload, instance)
        parsed = decode_frame(frame[4:])
        assert parsed["round"] == round_no
        assert parsed["sender"] == sender
        assert parsed["kind"] == kind
        assert parsed["payload"] == payload
        assert parsed["instance"] == instance

    @given(junk=st.binary(max_size=64))
    def test_garbage_never_crashes_decoder_unsafely(self, junk):
        """Arbitrary bytes either parse or raise ValueError — nothing
        else (the peer closes the connection on ValueError)."""
        try:
            decode_frame(junk)
        except (ValueError, UnicodeDecodeError):
            pass
