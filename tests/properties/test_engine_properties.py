"""Property-based tests for the simulation engine itself.

Hypothesis generates random send scripts; the engine must uphold the
model's delivery guarantees regardless: exactly-once delivery of
distinct messages, one-round latency, truthful sender stamping, and
byte-for-byte determinism.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.inbox import Inbox
from repro.sim.message import BROADCAST, Send
from repro.sim.network import SyncNetwork
from repro.sim.node import NodeApi, Protocol

fast = settings(max_examples=25, deadline=None)

#: (round, kind, payload, broadcast?) scripts for a scripted node.
script_entries = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),  # send round
        st.sampled_from(["a", "b", "c"]),  # kind
        st.integers(min_value=0, max_value=3),  # payload
    ),
    max_size=12,
)


class ScriptedNode(Protocol):
    """Broadcasts per a (round -> messages) script; records all receipt."""

    def __init__(self, script):
        super().__init__()
        self.script = script
        self.received: list = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.received.append([(m.sender, m.kind, m.payload) for m in inbox])
        for round_no, kind, payload in self.script:
            if round_no == api.round:
                api.broadcast(kind, payload)


def run_pair(script_a, script_b, rounds=7):
    net = SyncNetwork(seed=0)
    a, b = ScriptedNode(script_a), ScriptedNode(script_b)
    net.add_correct(1, a)
    net.add_correct(2, b)
    net.run(rounds, until_all_halted=False)
    return a, b


class TestEngineProperties:
    @fast
    @given(script=script_entries)
    def test_every_distinct_send_delivered_exactly_once(self, script):
        a, b = run_pair(script, [])
        # b's total receipt of each distinct (round, kind, payload)
        # equals 1 (duplicates within a round collapse)
        expected = {(r + 1, k, p) for r, k, p in script}
        seen = []
        for round_index, inbox in enumerate(b.received, start=1):
            for sender, kind, payload in inbox:
                assert sender == 1
                seen.append((round_index, kind, payload))
        assert sorted(set(seen)) == sorted(expected)
        assert len(seen) == len(set(seen))

    @fast
    @given(script=script_entries)
    def test_delivery_latency_is_exactly_one_round(self, script):
        a, b = run_pair(script, [])
        for round_no, kind, payload in script:
            inbox = b.received[round_no]  # 0-indexed list, round+1 slot
            assert (1, kind, payload) in inbox

    @fast
    @given(script_a=script_entries, script_b=script_entries)
    def test_determinism(self, script_a, script_b):
        first = run_pair(script_a, script_b)
        second = run_pair(script_a, script_b)
        assert first[0].received == second[0].received
        assert first[1].received == second[1].received

    @fast
    @given(script=script_entries)
    def test_self_delivery_matches_peer_delivery(self, script):
        a, b = run_pair(script, [])
        a_seen = [
            [(k, p) for s, k, p in inbox] for inbox in a.received
        ]
        b_seen = [
            [(k, p) for s, k, p in inbox] for inbox in b.received
        ]
        assert a_seen == b_seen


class TestByzantineStampingProperty:
    @fast
    @given(
        claimed=st.integers(min_value=0, max_value=10**6),
        kind=st.sampled_from(["x", "echo", "input"]),
    )
    def test_sender_stamp_cannot_be_forged(self, claimed, kind):
        class Forger:
            def on_round(self, view):
                # whatever id the adversary *claims*, Send has no sender
                # field; the payload smuggles the claim instead
                return [Send(BROADCAST, kind, ("i-am", claimed))]

        net = SyncNetwork(seed=0)
        listener = ScriptedNode([])
        net.add_correct(1, listener)
        net.add_byzantine(2, Forger())
        net.run(3, until_all_halted=False)
        for inbox in listener.received:
            for sender, _kind, _payload in inbox:
                assert sender in (1, 2)
                if _payload == ("i-am", claimed):
                    assert sender == 2
