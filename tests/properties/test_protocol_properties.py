"""Property-based end-to-end protocol tests.

Hypothesis drives whole protocol runs over random input vectors, seeds,
and adversary choices; the paper's guarantees must hold on every draw.
Profiles are kept small (runs are whole simulations).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary import (
    EquivocatorStrategy,
    QuorumSplitterStrategy,
    SilentStrategy,
)
from repro.analysis.checkers import check_validity
from repro.core.consensus import EarlyConsensus
from repro.core.approx_agreement import ApproximateAgreement

from tests.conftest import run_quick

fast = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


ADVERSARIES = {
    "silent": lambda: SilentStrategy(),
    "splitter": lambda: QuorumSplitterStrategy(EarlyConsensus(0)),
    "equivocator": lambda: EquivocatorStrategy(EarlyConsensus(1)),
}


class TestConsensusProperties:
    @fast
    @given(
        inputs=st.lists(
            st.integers(min_value=0, max_value=1), min_size=4, max_size=10
        ),
        f=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10**6),
        adversary=st.sampled_from(sorted(ADVERSARIES)),
    )
    def test_agreement_and_validity_binary(self, inputs, f, seed, adversary):
        """Binary inputs enjoy *strict* validity: any binary decision is
        some correct node's input whenever inputs are mixed, and
        unanimity is preserved by Lemma 7.1."""
        correct = len(inputs)
        if not correct + f > 3 * f:
            f = (correct - 1) // 3
        result = run_quick(
            correct=correct,
            byzantine=f,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(inputs[i]),
            strategy_factory=lambda nid, i: ADVERSARIES[adversary](),
            max_rounds=600,
        )
        assert result.agreed, result.outputs
        if len(set(inputs)) == 1:
            check_validity(result, inputs).raise_if_failed()
        else:
            assert result.distinct_outputs <= {0, 1}

    @fast
    @given(
        inputs=st.lists(
            st.integers(min_value=0, max_value=3), min_size=4, max_size=10
        ),
        f=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10**6),
        adversary=st.sampled_from(sorted(ADVERSARIES)),
    )
    def test_agreement_and_weak_validity_multivalued(
        self, inputs, f, seed, adversary
    ):
        """Multivalued inputs get the paper's *weak* validity: unanimity
        is preserved, but with mixed inputs a Byzantine coordinator may
        legitimately steer the common decision to a value nobody input
        (exactly as in Algorithm 3's pseudocode — the coordinator's
        opinion is adopted unchecked when no strongprefer quorum formed).
        Hypothesis originally *found* this as a counterexample to the
        over-strict strict-validity property; see docs/faq.md."""
        correct = len(inputs)
        if not correct + f > 3 * f:
            f = (correct - 1) // 3
        result = run_quick(
            correct=correct,
            byzantine=f,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(inputs[i]),
            strategy_factory=lambda nid, i: ADVERSARIES[adversary](),
            max_rounds=600,
        )
        assert result.agreed, result.outputs
        if len(set(inputs)) == 1:
            check_validity(result, inputs).raise_if_failed()

    @fast
    @given(
        value=st.integers(min_value=-100, max_value=100),
        correct=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_unanimity_fast_path(self, value, correct, seed):
        f = (correct - 1) // 3
        result = run_quick(
            correct=correct - f,
            byzantine=f,
            seed=seed,
            protocol_factory=lambda nid, i: EarlyConsensus(value),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=200,
        )
        assert result.distinct_outputs == {value}
        assert result.rounds == 7  # init + exactly one phase


class TestApproxProperties:
    @fast
    @given(
        inputs=st.lists(
            st.floats(
                min_value=-1e3,
                max_value=1e3,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=4,
            max_size=10,
        ),
        seed=st.integers(min_value=0, max_value=10**6),
        low=st.floats(min_value=-1e9, max_value=0, allow_nan=False),
        high=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    )
    def test_containment_under_injection(self, inputs, seed, low, high):
        from repro.adversary import ValueInjectorStrategy

        correct = len(inputs)
        f = (correct - 1) // 3
        result = run_quick(
            correct=correct,
            byzantine=f,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: ApproximateAgreement(inputs[i]),
            strategy_factory=lambda nid, i: ValueInjectorStrategy(
                low=low, high=high
            ),
            max_rounds=4,
        )
        lo, hi = min(inputs), max(inputs)
        for output in result.outputs.values():
            assert lo - 1e-9 <= output <= hi + 1e-9
        outputs = list(result.outputs.values())
        assert max(outputs) - min(outputs) <= (hi - lo) / 2 + 1e-9
