"""Property-based tests: renaming, binary king, parallel consensus.

Randomized populations, inputs, seeds, and adversaries; the guarantees
must hold on every draw.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary import (
    MembershipLiarStrategy,
    QuorumSplitterStrategy,
    SilentStrategy,
)
from repro.core.binary_consensus import BinaryKingConsensus
from repro.core.parallel_consensus import ParallelConsensus
from repro.core.renaming import ByzantineRenaming

from tests.conftest import run_quick

fast = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRenamingProperties:
    @fast
    @given(
        correct=st.integers(min_value=3, max_value=10),
        f=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10**6),
        liar=st.booleans(),
    )
    def test_assignment_properties(self, correct, f, seed, liar):
        if not correct + f > 3 * f:
            f = (correct - 1) // 2  # keep g > 2f
        result = run_quick(
            correct=correct,
            byzantine=f,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: ByzantineRenaming(),
            strategy_factory=(
                lambda nid, i: MembershipLiarStrategy()
                if liar
                else SilentStrategy()
            )
            if f
            else None,
            max_rounds=4 * max(f, 1) + 40,
        )
        assert result.agreed
        (assignment,) = result.distinct_outputs
        # every correct id present, assignment sorted and duplicate-free
        assert set(result.correct_ids) <= set(assignment)
        assert list(assignment) == sorted(set(assignment))
        # ranks are a permutation of 1..k over the correct nodes' names
        names = [
            result.protocols[n].new_name for n in result.correct_ids
        ]
        assert len(set(names)) == len(names)
        assert all(1 <= name <= len(assignment) for name in names)


class TestBinaryKingProperties:
    @fast
    @given(
        inputs=st.lists(
            st.integers(min_value=0, max_value=1), min_size=4, max_size=9
        ),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_agreement_validity(self, inputs, seed):
        correct = len(inputs)
        f = (correct - 1) // 3
        result = run_quick(
            correct=correct,
            byzantine=f,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: BinaryKingConsensus(inputs[i]),
            strategy_factory=(
                lambda nid, i: QuorumSplitterStrategy(
                    BinaryKingConsensus(0)
                )
            )
            if f
            else None,
            max_rounds=2 + 5 * (correct + f + 4),
        )
        assert result.agreed
        (value,) = result.distinct_outputs
        assert value in set(inputs)


class TestParallelConsensusProperties:
    @fast
    @given(
        ids=st.lists(
            st.text(
                alphabet="abcdef", min_size=1, max_size=3
            ),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        values=st.lists(
            st.integers(min_value=0, max_value=9), min_size=5, max_size=5
        ),
        awareness_mask=st.integers(min_value=1, max_value=127),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_agreement_and_validity(self, ids, values, awareness_mask, seed):
        def factory(nid, i):
            inputs = {}
            for k, instance_id in enumerate(ids):
                # validity-relevant ids are held by everyone; others by
                # the mask-selected subset
                if k == 0 or (awareness_mask >> (i % 7)) & 1:
                    inputs[instance_id] = values[k % len(values)]
            return ParallelConsensus(inputs)

        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=factory,
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=400,
        )
        assert result.agreed
        (output,) = result.distinct_outputs
        output_map = dict(output)
        # validity: the universally-held pair must be in the output
        assert output_map.get(ids[0]) == values[0]
        # outputs only carry ids someone actually input
        assert set(output_map) <= set(ids)
