"""Property-based tests for the trim-and-midpoint operator (Lemmas
aaWithin and aaMed as universally quantified statements)."""

from hypothesis import assume, given, strategies as st

from repro.core.approx_agreement import trim_and_midpoint

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def correct_and_byzantine(draw_correct, draw_byz):
    """Strategy pair: (correct values, byzantine values) with n > 3f."""
    return st.tuples(draw_correct, draw_byz).filter(
        lambda pair: len(pair[0]) + len(pair[1]) > 3 * len(pair[1])
        and len(pair[0]) > 0
    )


values_with_failures = correct_and_byzantine(
    st.lists(finite_floats, min_size=1, max_size=40),
    st.lists(finite_floats, min_size=0, max_size=12),
)


class TestTrimMidpointProperties:
    @given(pair=values_with_failures)
    def test_output_within_correct_range(self, pair):
        """Lemma aaWithin: o_v ∈ [i_min, i_max] whatever f values the
        adversary injects, as long as n_v > 3 f_v."""
        correct, byzantine = pair
        output = trim_and_midpoint(correct + byzantine)
        assert min(correct) - 1e-9 <= output <= max(correct) + 1e-9

    @given(pair=values_with_failures)
    def test_median_of_correct_survives(self, pair):
        """Lemma aaMed: the correct median is never trimmed."""
        correct, byzantine = pair
        values = sorted(correct + byzantine)
        trim = len(values) // 3
        survivors = values[trim: len(values) - trim]
        ordered = sorted(correct)
        median = ordered[len(ordered) // 2]
        assert survivors[0] - 1e-9 <= median <= survivors[-1] + 1e-9

    @given(values=st.lists(finite_floats, min_size=1, max_size=60))
    def test_output_within_all_values(self, values):
        output = trim_and_midpoint(values)
        assert min(values) - 1e-9 <= output <= max(values) + 1e-9

    @given(
        values=st.lists(finite_floats, min_size=1, max_size=60),
        shift=finite_floats,
    )
    def test_translation_equivariance(self, values, shift):
        base = trim_and_midpoint(values)
        shifted = trim_and_midpoint([v + shift for v in values])
        assert abs(shifted - (base + shift)) <= 1e-6 * max(
            1.0, abs(base), abs(shift)
        )

    @given(values=st.lists(finite_floats, min_size=1, max_size=60))
    def test_permutation_invariance(self, values):
        assert trim_and_midpoint(values) == trim_and_midpoint(
            list(reversed(values))
        )

    @given(value=finite_floats, n=st.integers(min_value=1, max_value=50))
    def test_agreement_on_identical_values(self, value, n):
        assert trim_and_midpoint([value] * n) == value

    @given(pair=values_with_failures)
    def test_two_nodes_with_disjoint_byzantine_views_halve_the_range(
        self, pair
    ):
        """The halving argument: any two outputs computed from the same
        correct values but *different* Byzantine injections lie within
        half the correct range of each other."""
        correct, byzantine = pair
        assume(len(correct) + len(byzantine) > 3 * len(byzantine))
        out_a = trim_and_midpoint(correct + byzantine)
        out_b = trim_and_midpoint(correct + [-v for v in byzantine])
        input_range = max(correct) - min(correct)
        assert abs(out_a - out_b) <= input_range / 2 + 1e-6
