"""Property-based tests for the threshold arithmetic (hypothesis).

These encode the paper's core counting lemmas as universally quantified
statements over the integer parameters.
"""

from fractions import Fraction

from hypothesis import given, strategies as st

from repro.core.quorum import (
    EchoVoting,
    at_least_third,
    at_least_two_thirds,
)


counts = st.integers(min_value=0, max_value=200)
populations = st.integers(min_value=0, max_value=200)


class TestThresholdProperties:
    @given(count=counts, n=populations)
    def test_matches_exact_rational_semantics(self, count, n):
        assert at_least_third(count, n) == (
            count > 0 and Fraction(count) >= Fraction(n, 3)
        )
        assert at_least_two_thirds(count, n) == (
            count > 0 and Fraction(count) >= Fraction(2 * n, 3)
        )

    @given(count=counts, n=populations)
    def test_two_thirds_implies_one_third(self, count, n):
        if at_least_two_thirds(count, n):
            assert at_least_third(count, n)

    @given(count=counts, n=populations)
    def test_monotone_in_count(self, count, n):
        if at_least_third(count, n):
            assert at_least_third(count + 1, n)
        if at_least_two_thirds(count, n):
            assert at_least_two_thirds(count + 1, n)

    @given(count=counts, n=populations)
    def test_antitone_in_population(self, count, n):
        if not at_least_third(count, n):
            assert not at_least_third(count, n + 1)
        if not at_least_two_thirds(count, n):
            assert not at_least_two_thirds(count, n + 1)

    @given(f=st.integers(min_value=0, max_value=60))
    def test_lemma_quorum_overlap(self, f):
        """Two 2n/3 quorums over n > 3f nodes share a correct node.

        This is Lemma `quorum` in its counting form: with g = n - f
        correct nodes, any two sets of size >= 2n/3 overlap in more than
        f nodes, so in at least one correct one.
        """
        n = 3 * f + 1
        quorum = -(-2 * n // 3)  # ceil(2n/3): the smallest passing count
        # two quorums overlap in at least 2*quorum - n nodes
        overlap = 2 * quorum - n
        assert overlap > f

    @given(f=st.integers(min_value=0, max_value=60))
    def test_lemma_rn_g1_byzantine_cannot_fake_third(self, f):
        """Byzantine nodes alone never reach an n_v/3 quorum (Lemma rn-g1).

        Worst case for the adversary: every faulty node talks to v
        (f_v' = f) and all of them back the same value, while all g
        correct nodes have announced themselves.
        """
        g = 2 * f + 1  # the minimum correct population for n > 3f
        n_v = g + f
        assert not at_least_third(f, n_v) or f == 0

    @given(
        f=st.integers(min_value=0, max_value=60),
        g_extra=st.integers(min_value=1, max_value=60),
    )
    def test_correct_majority_always_passes_two_thirds(self, f, g_extra):
        """All g correct votes always clear the 2n_v/3 bar (validity)."""
        g = 2 * f + g_extra
        n_v = g + f
        assert at_least_two_thirds(g, n_v)


class TestEchoVotingProperties:
    @given(
        senders=st.lists(
            st.integers(min_value=0, max_value=30),
            min_size=0,
            max_size=60,
        ),
        n=st.integers(min_value=1, max_value=40),
    )
    def test_accept_implies_echo_in_same_evaluation(self, senders, n):
        voting = EchoVoting()
        voting.absorb((s, "t") for s in senders)
        decision = voting.evaluate(n, 1)
        if "t" in decision.newly_accepted:
            assert "t" in decision.echo

    @given(
        batches=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=20),
                min_size=0,
                max_size=20,
            ),
            min_size=1,
            max_size=6,
        ),
        n=st.integers(min_value=1, max_value=30),
    )
    def test_acceptance_is_permanent_and_unique(self, batches, n):
        voting = EchoVoting()
        accept_events = 0
        for round_no, batch in enumerate(batches, start=1):
            voting.absorb((s, "t") for s in batch)
            decision = voting.evaluate(n, round_no)
            accept_events += decision.newly_accepted.count("t")
        assert accept_events <= 1
        if accept_events:
            assert voting.is_accepted("t")
