"""Property-based total ordering: random event plans, random churn."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary import SilentStrategy
from repro.analysis.checkers import check_chain_prefix
from repro.core.total_order import TotalOrderNode, events_from_dict
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids

slow = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@slow
@given(
    plans=st.lists(
        st.dictionaries(
            keys=st.integers(min_value=1, max_value=25),
            values=st.integers(min_value=0, max_value=99),
            max_size=6,
        ),
        min_size=4,
        max_size=7,
    ),
    seed=st.integers(min_value=0, max_value=10**6),
    byzantine=st.integers(min_value=0, max_value=2),
)
def test_random_event_plans_yield_identical_chains(plans, seed, byzantine):
    if not len(plans) + byzantine > 3 * byzantine:
        byzantine = 0
    rng = make_rng(seed)
    ids = sparse_ids(len(plans) + byzantine, rng)
    net = SyncNetwork(seed=seed)
    for index, node_id in enumerate(ids[: len(plans)]):
        net.add_correct(
            node_id,
            TotalOrderNode(event_source=events_from_dict(plans[index])),
        )
    for node_id in ids[len(plans):]:
        net.add_byzantine(node_id, SilentStrategy())
    net.run(70, until_all_halted=False)

    chains = {
        node_id: protocol.chain
        for node_id, protocol in net.protocols().items()
    }
    report = check_chain_prefix(chains)
    assert report.ok, report.violations
    # chains are identical (same membership, same horizon)
    values = list(chains.values())
    assert all(c == values[0] for c in values)
    # no fabricated events: everything in the chain was planned by
    # someone...
    reference_events = {entry[2] for entry in values[0]}
    planned = {event for plan in plans for event in plan.values()}
    assert reference_events <= planned
    # ...and every early event (submitted with ample finality headroom)
    # made it into the agreed chain
    horizon = 70 - 2  # global rounds minus bootstrap
    for plan in plans:
        for local_round, event in plan.items():
            if local_round + 5 * 10 // 2 + 12 < horizon:
                assert event in reference_events, (local_round, event)


@slow
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    join_round=st.integers(min_value=8, max_value=25),
)
def test_random_join_round_preserves_suffix_consistency(seed, join_round):
    rng = make_rng(seed)
    ids = sparse_ids(8, rng)
    veterans, joiner = ids[:7], ids[7]
    membership = MembershipSchedule()
    membership.join(join_round, joiner, lambda: TotalOrderNode(seed=False))
    net = SyncNetwork(seed=seed, membership=membership)
    for index, node_id in enumerate(veterans):
        net.add_correct(
            node_id,
            TotalOrderNode(
                event_source=events_from_dict(
                    {r: f"e{index}@{r}" for r in range(2, 45, 5)}
                )
            ),
        )
    net.run(90, until_all_halted=False)
    chains = {
        node_id: protocol.chain
        for node_id, protocol in net.protocols().items()
    }
    report = check_chain_prefix(chains)
    assert report.ok, report.violations
    assert chains[joiner], "joiner finalized nothing"
