"""Randomized coherence check: indexed Inbox queries vs naive scans.

Every :class:`~repro.sim.inbox.Inbox` query routes through a lazily
built — possibly shared, possibly layered — ``InboxIndex``.  The
contract is that indexing is invisible: for any message multiset
(duplicate senders, exact duplicate messages, instance tags, overlay
stacks, any cache-priming order) every query returns exactly what a
naive linear scan over the message tuple returns.

Randomization is seeded through :func:`repro.sim.rng.make_rng`, so every
failure here replays byte-for-byte from its seed.
"""

from repro.sim.inbox import Inbox, InboxIndex
from repro.sim.message import Message
from repro.sim.rng import make_rng

KINDS = ("echo", "input", "prefer")
PAYLOADS = (0, 1, "v", None)
INSTANCES = (None, "x", ("t", 1))
SENDERS = tuple(range(6))

#: The query matrix both implementations are evaluated over.
QUERY_KINDS = (None,) + KINDS
QUERY_PAYLOADS = (...,) + PAYLOADS
QUERY_INSTANCES = (...,) + INSTANCES


def random_messages(rng, size):
    """A message list with duplicate senders and exact duplicates."""
    out = []
    while len(out) < size:
        out.append(
            Message(
                sender=rng.choice(SENDERS),
                kind=rng.choice(KINDS),
                payload=rng.choice(PAYLOADS),
                instance=rng.choice(INSTANCES),
            )
        )
        if rng.random() < 0.2:
            out.append(rng.choice(out))
    return out[:size]


# ----------------------------------------------------------------------
# The naive reference: plain linear scans, no caching anywhere.
# ----------------------------------------------------------------------
def naive_senders(messages, kind=None, payload=..., instance=...):
    return {
        m.sender for m in messages if m.matches(kind, payload, instance)
    }


def naive_tallies(messages, kind, instance=...):
    per_payload = {}
    for m in messages:
        if m.matches(kind, instance=instance):
            per_payload.setdefault(m.payload, set()).add(m.sender)
    return per_payload


def naive_best(messages, kind, instance=...):
    tallies = naive_tallies(messages, kind, instance)
    if not tallies:
        return (None, 0)
    payload, senders = max(
        tallies.items(), key=lambda item: (len(item[1]), repr(item[0]))
    )
    return payload, len(senders)


def assert_coherent(box, messages):
    """Run the full query matrix against the naive reference."""
    assert tuple(box) == tuple(messages)
    for kind in QUERY_KINDS:
        for payload in QUERY_PAYLOADS:
            for instance in QUERY_INSTANCES:
                expect = naive_senders(messages, kind, payload, instance)
                assert box.senders(kind, payload, instance) == expect
                assert box.count(kind, payload, instance) == len(expect)
                filtered = box.filter(kind, payload, instance)
                assert list(filtered) == [
                    m
                    for m in messages
                    if m.matches(kind, payload, instance)
                ]
    for kind in KINDS:
        for instance in QUERY_INSTANCES:
            tallies = naive_tallies(messages, kind, instance)
            counts = box.payload_counts(kind, instance)
            assert dict(counts) == {
                p: len(s) for p, s in tallies.items()
            }
            assert box.best_payload(kind, instance) == naive_best(
                messages, kind, instance
            )
    for sender in SENDERS:
        expect_msgs = [m for m in messages if m.sender == sender]
        assert list(box.from_sender(sender)) == expect_msgs
        assert box.received_from(sender) == bool(expect_msgs)
    assert box.kinds() == {m.kind for m in messages}
    assert box.instances() == {
        m.instance for m in messages if m.instance is not None
    }


class TestIndexCoherence:
    def test_indexed_queries_match_naive_scans(self):
        for seed in range(25):
            rng = make_rng(seed)
            messages = random_messages(rng, rng.randrange(0, 40))
            assert_coherent(Inbox(messages), messages)

    def test_cache_priming_order_is_irrelevant(self):
        # The index fills its caches on first demand; whichever query
        # arrives first (a tallying best_payload, a bucket filter, a
        # bare senders()) must leave every later answer unchanged.
        for seed in range(10):
            rng = make_rng(seed, salt=1)
            messages = random_messages(rng, 30)
            cold = Inbox(messages)
            primed = Inbox(messages)
            primed.best_payload("echo")
            primed.filter("input")
            primed.senders()
            primed.from_sender(0)
            assert_coherent(primed, messages)
            assert_coherent(cold, messages)

    def test_shared_index_views_agree(self):
        # Two Inbox views over one index (the engine's all-broadcast
        # path): queries on one prime caches the other then reuses, and
        # single-axis filters alias the very same sub-inbox object.
        for seed in range(10):
            rng = make_rng(seed, salt=2)
            messages = random_messages(rng, 30)
            index = InboxIndex(messages)
            first = Inbox(index=index)
            second = Inbox(index=index)
            first.best_payload("echo")
            first.senders("input")
            assert first.filter("echo") is second.filter("echo")
            assert first.from_sender(3) is second.from_sender(3)
            assert_coherent(second, messages)

    def test_layered_overlay_matches_flat_rebuild(self):
        # merged_with() layers extras over the base index; the result
        # must be indistinguishable from indexing base+extras from
        # scratch, and the base view must stay untouched.
        for seed in range(15):
            rng = make_rng(seed, salt=3)
            base_messages = random_messages(rng, rng.randrange(0, 25))
            extras = random_messages(rng, rng.randrange(1, 10))
            base = Inbox(base_messages)
            base.best_payload("echo")  # prime caches before layering
            merged = base.merged_with(extras)
            combined = list(base_messages) + list(extras)
            assert_coherent(merged, combined)
            assert_coherent(base, base_messages)

    def test_nested_overlays(self):
        rng = make_rng(7, salt=4)
        first = random_messages(rng, 12)
        second = random_messages(rng, 5)
        third = random_messages(rng, 5)
        box = Inbox(first).merged_with(second).merged_with(third)
        assert_coherent(box, first + second + third)

    def test_layering_nothing_returns_the_base_index(self):
        messages = [Message(1, "echo", "m")]
        base = Inbox(messages)
        assert InboxIndex.layered(base.index, ()) is base.index
