"""Randomized coherence check: indexed Inbox queries vs naive scans.

Every :class:`~repro.sim.inbox.Inbox` query routes through a lazily
built — possibly shared, possibly layered — ``InboxIndex``.  The
contract is that indexing is invisible: for any message multiset
(duplicate senders, exact duplicate messages, instance tags, overlay
stacks, any cache-priming order) every query returns exactly what a
naive linear scan over the message tuple returns.

Randomization is seeded through :func:`repro.sim.rng.make_rng`, so every
failure here replays byte-for-byte from its seed.
"""

from repro.sim.columnar import ColumnarIndex, ColumnarPlane
from repro.sim.inbox import Inbox, InboxIndex
from repro.sim.message import Message
from repro.sim.rng import make_rng

KINDS = ("echo", "input", "prefer")
PAYLOADS = (0, 1, "v", None)
INSTANCES = (None, "x", ("t", 1))
SENDERS = tuple(range(6))

#: The query matrix both implementations are evaluated over.
QUERY_KINDS = (None,) + KINDS
QUERY_PAYLOADS = (...,) + PAYLOADS
QUERY_INSTANCES = (...,) + INSTANCES


def random_messages(rng, size):
    """A message list with duplicate senders and exact duplicates."""
    out = []
    while len(out) < size:
        out.append(
            Message(
                sender=rng.choice(SENDERS),
                kind=rng.choice(KINDS),
                payload=rng.choice(PAYLOADS),
                instance=rng.choice(INSTANCES),
            )
        )
        if rng.random() < 0.2:
            out.append(rng.choice(out))
    return out[:size]


# ----------------------------------------------------------------------
# The naive reference: plain linear scans, no caching anywhere.
# ----------------------------------------------------------------------
def naive_senders(messages, kind=None, payload=..., instance=...):
    return {
        m.sender for m in messages if m.matches(kind, payload, instance)
    }


def naive_tallies(messages, kind, instance=...):
    per_payload = {}
    for m in messages:
        if m.matches(kind, instance=instance):
            per_payload.setdefault(m.payload, set()).add(m.sender)
    return per_payload


def naive_best(messages, kind, instance=...):
    tallies = naive_tallies(messages, kind, instance)
    if not tallies:
        return (None, 0)
    payload, senders = max(
        tallies.items(), key=lambda item: (len(item[1]), repr(item[0]))
    )
    return payload, len(senders)


def assert_coherent(box, messages):
    """Run the full query matrix against the naive reference."""
    assert tuple(box) == tuple(messages)
    for kind in QUERY_KINDS:
        for payload in QUERY_PAYLOADS:
            for instance in QUERY_INSTANCES:
                expect = naive_senders(messages, kind, payload, instance)
                assert box.senders(kind, payload, instance) == expect
                assert box.count(kind, payload, instance) == len(expect)
                filtered = box.filter(kind, payload, instance)
                assert list(filtered) == [
                    m
                    for m in messages
                    if m.matches(kind, payload, instance)
                ]
    for kind in KINDS:
        for instance in QUERY_INSTANCES:
            tallies = naive_tallies(messages, kind, instance)
            counts = box.payload_counts(kind, instance)
            assert dict(counts) == {
                p: len(s) for p, s in tallies.items()
            }
            assert box.best_payload(kind, instance) == naive_best(
                messages, kind, instance
            )
    for sender in SENDERS:
        expect_msgs = [m for m in messages if m.sender == sender]
        assert list(box.from_sender(sender)) == expect_msgs
        assert box.received_from(sender) == bool(expect_msgs)
    assert box.kinds() == {m.kind for m in messages}
    assert box.instances() == {
        m.instance for m in messages if m.instance is not None
    }


class TestIndexCoherence:
    def test_indexed_queries_match_naive_scans(self):
        for seed in range(25):
            rng = make_rng(seed)
            messages = random_messages(rng, rng.randrange(0, 40))
            assert_coherent(Inbox(messages), messages)

    def test_cache_priming_order_is_irrelevant(self):
        # The index fills its caches on first demand; whichever query
        # arrives first (a tallying best_payload, a bucket filter, a
        # bare senders()) must leave every later answer unchanged.
        for seed in range(10):
            rng = make_rng(seed, salt=1)
            messages = random_messages(rng, 30)
            cold = Inbox(messages)
            primed = Inbox(messages)
            primed.best_payload("echo")
            primed.filter("input")
            primed.senders()
            primed.from_sender(0)
            assert_coherent(primed, messages)
            assert_coherent(cold, messages)

    def test_shared_index_views_agree(self):
        # Two Inbox views over one index (the engine's all-broadcast
        # path): queries on one prime caches the other then reuses, and
        # single-axis filters alias the very same sub-inbox object.
        for seed in range(10):
            rng = make_rng(seed, salt=2)
            messages = random_messages(rng, 30)
            index = InboxIndex(messages)
            first = Inbox(index=index)
            second = Inbox(index=index)
            first.best_payload("echo")
            first.senders("input")
            assert first.filter("echo") is second.filter("echo")
            assert first.from_sender(3) is second.from_sender(3)
            assert_coherent(second, messages)

    def test_layered_overlay_matches_flat_rebuild(self):
        # merged_with() layers extras over the base index; the result
        # must be indistinguishable from indexing base+extras from
        # scratch, and the base view must stay untouched.
        for seed in range(15):
            rng = make_rng(seed, salt=3)
            base_messages = random_messages(rng, rng.randrange(0, 25))
            extras = random_messages(rng, rng.randrange(1, 10))
            base = Inbox(base_messages)
            base.best_payload("echo")  # prime caches before layering
            merged = base.merged_with(extras)
            combined = list(base_messages) + list(extras)
            assert_coherent(merged, combined)
            assert_coherent(base, base_messages)

    def test_nested_overlays(self):
        rng = make_rng(7, salt=4)
        first = random_messages(rng, 12)
        second = random_messages(rng, 5)
        third = random_messages(rng, 5)
        box = Inbox(first).merged_with(second).merged_with(third)
        assert_coherent(box, first + second + third)

    def test_layering_nothing_returns_the_base_index(self):
        messages = [Message(1, "echo", "m")]
        base = Inbox(messages)
        assert InboxIndex.layered(base.index, ()) is base.index


# ----------------------------------------------------------------------
# Columnar round plane: staged columns vs the object path.
# ----------------------------------------------------------------------
def random_stream(rng, size):
    """A staging stream mixing scalar broadcasts, batched fan-outs,
    exact repeats, and batch/scalar collisions on one sender."""
    stream = []
    while len(stream) < size:
        sender = rng.choice(SENDERS)
        kind = rng.choice(KINDS)
        instance = rng.choice(INSTANCES)
        if rng.random() < 0.35:
            payloads = tuple(
                rng.choice(PAYLOADS)
                for _ in range(rng.randrange(1, 5))
            )
            stream.append(("batch", sender, kind, payloads, instance))
        else:
            stream.append(
                ("scalar", sender, kind, rng.choice(PAYLOADS), instance)
            )
        if rng.random() < 0.2:
            stream.append(rng.choice(stream))
    return stream[:size]


def stage_stream(stream, plane=None):
    """Stage a stream into fresh columns, exactly as the engine would."""
    plane = plane or ColumnarPlane()
    cols = plane.new_round()
    for entry in stream:
        if entry[0] == "scalar":
            _, sender, kind, payload, instance = entry
            cols.stage(sender, kind, payload, instance)
        else:
            _, sender, kind, payloads, instance = entry
            cols.stage_batch(
                sender, plane.intern_batch(kind, payloads, instance)
            )
    return cols


def expected_messages(stream):
    """The object path's staging outcome: per-round Message-set dedup
    over the expanded stream, in staging order."""
    seen, out = set(), []
    for entry in stream:
        if entry[0] == "scalar":
            _, sender, kind, payload, instance = entry
            expanded = [Message(sender, kind, payload, instance)]
        else:
            _, sender, kind, payloads, instance = entry
            expanded = [
                Message(sender, kind, p, instance) for p in payloads
            ]
        for message in expanded:
            if message not in seen:
                seen.add(message)
                out.append(message)
    return out


class TestColumnarCoherence:
    def test_columnar_index_matches_object_path(self):
        for seed in range(25):
            rng = make_rng(seed, salt=20)
            stream = random_stream(rng, rng.randrange(0, 40))
            cols = stage_stream(stream)
            messages = expected_messages(stream)
            assert list(cols.materialize()) == messages
            assert_coherent(Inbox(index=ColumnarIndex(cols)), messages)
            # The plain object index over the same messages agrees too
            # (both sides reduce to one oracle).
            assert_coherent(Inbox(messages), messages)

    def test_counting_queries_never_materialize(self):
        # Sender sets, tallies, and surveys are counting passes over the
        # columns; message objects exist only after someone iterates.
        for seed in range(10):
            rng = make_rng(seed, salt=21)
            stream = random_stream(rng, 30)
            cols = stage_stream(stream)
            messages = expected_messages(stream)
            box = Inbox(index=ColumnarIndex(cols))
            # kind=None with concrete filters falls back to the object
            # path, so the counting-only guarantee covers per-kind
            # queries plus the unfiltered sender census.
            assert box.senders() == naive_senders(messages)
            for kind in KINDS:
                for instance in QUERY_INSTANCES:
                    expect = naive_senders(
                        messages, kind, instance=instance
                    )
                    assert box.senders(kind, ..., instance) == expect
            for kind in KINDS:
                tallies = naive_tallies(messages, kind)
                assert dict(box.index.payload_senders(kind, ...)) == {
                    p: frozenset(s) for p, s in tallies.items()
                }
                assert box.best_payload(kind) == naive_best(
                    messages, kind
                )
            assert box.index.instance_tags() == tuple(
                dict.fromkeys(
                    m.instance
                    for m in messages
                    if m.instance is not None
                )
            )
            assert cols._materialized is None
            # Full coherence afterwards: materializing later must agree
            # with everything the counting passes already answered.
            assert_coherent(box, messages)

    def test_cross_form_duplicate_suppression(self):
        # scalar-then-batch, batch-then-scalar, identical re-broadcast,
        # and two overlapping batches must all match the object path.
        streams = [
            [
                ("scalar", 1, "echo", "p", None),
                ("batch", 1, "echo", ("p", "q"), None),
            ],
            [
                ("batch", 1, "echo", ("p", "q"), None),
                ("scalar", 1, "echo", "p", None),
                ("scalar", 1, "echo", "r", None),
            ],
            [
                ("batch", 2, "echo", ("a", "b"), "x"),
                ("batch", 2, "echo", ("a", "b"), "x"),
            ],
            [
                ("batch", 3, "echo", ("a", "b"), None),
                ("batch", 3, "echo", ("b", "c"), None),
                ("batch", 4, "echo", ("a", "b"), None),
            ],
            [
                ("batch", 5, "echo", ("a", "a", "b"), None),
            ],
        ]
        for stream in streams:
            cols = stage_stream(stream)
            messages = expected_messages(stream)
            assert list(cols.materialize()) == messages
            assert_coherent(Inbox(index=ColumnarIndex(cols)), messages)

    def test_shared_payload_tuple_interns_one_batch(self):
        # The quorum plane hands every node the same tuple object; the
        # intern table must resolve them all to one canonical batch,
        # by identity or by value.
        plane = ColumnarPlane()
        shared = (1, 2, 3)
        first = plane.intern_batch("echo", shared, None)
        assert plane.intern_batch("echo", shared, None) is first
        assert plane.intern_batch("echo", (1, 2, 3), None) is first
        cols = plane.new_round()
        for sender in range(6):
            cols.stage_batch(sender, first)
        tally = cols.payload_tally("echo", ...)
        assert tally == {
            1: frozenset(range(6)),
            2: frozenset(range(6)),
            3: frozenset(range(6)),
        }
        # Homogeneous rounds share one sender frozenset across tags.
        assert tally[1] is tally[2] is tally[3]

    def test_join_round_backfill_layering(self):
        # A joiner's direct extras layer over the shared columnar index
        # (the engine's join-round back-fill path): the overlay must be
        # indistinguishable from indexing broadcasts+extras flat.
        for seed in range(10):
            rng = make_rng(seed, salt=22)
            stream = random_stream(rng, 25)
            cols = stage_stream(stream)
            messages = expected_messages(stream)
            extras = tuple(random_messages(rng, rng.randrange(1, 8)))
            shared = ColumnarIndex(cols)
            merged = Inbox(index=InboxIndex.layered(shared, extras))
            assert_coherent(merged, messages + list(extras))
            # The shared view is untouched by the overlay.
            assert_coherent(Inbox(index=shared), messages)
