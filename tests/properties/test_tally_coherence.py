"""Randomized coherence check: shared-tally ``_count`` vs naive rebuild.

:meth:`~repro.core.parallel_consensus.ConsensusInstance._count` rides
the quorum-tally plane: the decoded vote base and the membership
back-fill sets are memoized once per round on the (shared)
:class:`~repro.sim.inbox.InboxIndex`, and only the genuinely per-node
parts — the first-phase ``⊥`` back-fill and the own-last-action
substitution — are layered as count deltas through
:func:`~repro.sim.inbox.best_with_extra`.  The contract is that the
plane is invisible: for any message multiset, membership, and
substitution configuration, ``_count`` returns exactly what the
historical per-node dict rebuild returned, including the full
``(count, payload repr, insertion order)`` tie-break chain.

The naive reference below *is* that historical implementation,
preserved verbatim as the oracle.  Mirrors
``test_index_coherence.py``: randomization is seeded through
:func:`repro.sim.rng.make_rng`, so every failure replays byte-for-byte
from its seed.
"""

from repro.core.parallel_consensus import (
    _ABSTAINED,
    KIND_INPUT,
    KIND_NOINPUT,
    KIND_PREFER,
    KIND_STRONGPREFER,
    ConsensusInstance,
    ParallelConsensus,
)
from repro.sim.columnar import ColumnarIndex, ColumnarPlane
from repro.sim.inbox import Inbox, InboxIndex
from repro.sim.membership import MembershipSchedule
from repro.sim.message import Message
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng
from repro.types import BOTTOM

QUORUM_KINDS = (KIND_INPUT, KIND_PREFER, KIND_STRONGPREFER)


class _Twin:
    """Distinct hashable payloads with identical reprs.

    Forces the exact-tie branch of ``best_with_extra`` (equal count
    *and* equal repr on distinct payloads), where only insertion order
    decides — the hardest case to keep coherent with the naive rebuild.
    """

    def __repr__(self):
        return "Twin()"

    def __hash__(self):
        return 7

    def __eq__(self, other):
        return self is other


TWIN_A = _Twin()
TWIN_B = _Twin()

#: Message kinds seen by a tagged instance inbox: the quorum kinds, the
#: abstention markers, and non-counted traffic (echo/opinion noise).
KINDS = QUORUM_KINDS + (
    KIND_NOINPUT,
    "nopreference",
    "nostrongpreference",
    "echo",
    "opinion",
)
#: ``"__bottom__"`` is the wire encoding of ``⊥`` and must decode.
PAYLOADS = (0, 1, "v", None, "__bottom__", TWIN_A, TWIN_B)
#: Values a node may have last sent (``_last_action`` entries).
OWN_VALUES = (0, 1, "v", None, BOTTOM, TWIN_A, TWIN_B)
SENDERS = tuple(range(8))
INSTANCE = ("pc", "case")


def random_messages(rng, size):
    """A tagged-instance message list with duplicate senders/messages."""
    out = []
    while len(out) < size:
        out.append(
            Message(
                sender=rng.choice(SENDERS),
                kind=rng.choice(KINDS),
                payload=rng.choice(PAYLOADS),
                instance=INSTANCE,
            )
        )
        if rng.random() < 0.2:
            out.append(rng.choice(out))
    return out[:size]


def random_membership(rng):
    """A frozen view overlapping (but not equal to) the sender pool."""
    pool = SENDERS + (100, 101)  # members that never speak
    return frozenset(s for s in pool if rng.random() < 0.7)


def random_instance(rng):
    """A ConsensusInstance in a random substitution configuration."""
    instance = ConsensusInstance(INSTANCE, start_round=3, value=BOTTOM)
    instance.join_phase_fill = rng.random() < 0.5
    for kind in QUORUM_KINDS:
        roll = rng.random()
        if roll < 1 / 3:
            continue  # never acted on this kind
        if roll < 2 / 3:
            instance._last_action[kind] = _ABSTAINED
        else:
            instance._last_action[kind] = rng.choice(OWN_VALUES)
    return instance


# ----------------------------------------------------------------------
# The naive reference: the pre-plane _count, one dict rebuild per call.
# ----------------------------------------------------------------------
def naive_count(messages, kind, membership, join_phase_fill, last_action):
    votes = {}

    def vote(value, sender):
        votes.setdefault(value, set()).add(sender)

    def senders_of(want):
        return {m.sender for m in messages if m.kind == want}

    for message in messages:
        if message.kind == kind:
            decoded = (
                BOTTOM
                if message.payload == "__bottom__"
                else message.payload
            )
            vote(decoded, message.sender)
    if kind == KIND_INPUT:
        for sender in senders_of(KIND_NOINPUT):
            vote(BOTTOM, sender)

    heard_from = {m.sender for m in messages}
    missing = membership - heard_from
    if join_phase_fill:
        typed = senders_of(kind) | (
            senders_of(KIND_NOINPUT) if kind == KIND_INPUT else set()
        )
        for sender in membership - typed:
            vote(BOTTOM, sender)
    elif kind in last_action:
        own = last_action[kind]
        if own is not _ABSTAINED:
            for sender in missing:
                vote(own, sender)

    if not votes:
        return None, 0
    value, supporters = max(
        votes.items(), key=lambda item: (len(item[1]), repr(item[0]))
    )
    return value, len(supporters)


def assert_counts_coherent(instance, tagged, messages, membership):
    for kind in QUORUM_KINDS:
        expect = naive_count(
            messages,
            kind,
            membership,
            instance.join_phase_fill,
            instance._last_action,
        )
        assert instance._count(tagged, kind, membership) == expect


class TestTallyCoherence:
    def test_shared_count_matches_naive_reference(self):
        cases = 0
        for seed in range(80):
            rng = make_rng(seed, salt=11)
            messages = random_messages(rng, rng.randrange(0, 50))
            membership = random_membership(rng)
            tagged = Inbox(messages)
            instance = random_instance(rng)
            assert_counts_coherent(instance, tagged, messages, membership)
            cases += 3
        assert cases >= 200

    def test_shared_index_serves_divergent_node_configs(self):
        # The engine's hot path: many nodes, one round index.  Nodes
        # differ in join phase, last actions, and membership view; each
        # must get its own naive answer while the vote base is derived
        # once and shared.
        for seed in range(20):
            rng = make_rng(seed, salt=12)
            messages = random_messages(rng, 40)
            index = InboxIndex(messages)
            memberships = [random_membership(rng) for _ in range(3)]
            for node in range(6):
                tagged = Inbox(index=index)
                instance = random_instance(rng)
                membership = memberships[node % len(memberships)]
                assert_counts_coherent(
                    instance, tagged, messages, membership
                )
            # All six nodes hit one memoized vote base per kind: the
            # derive key resolves to the already-built entry.
            for kind in QUORUM_KINDS:
                marker = object()
                base = index.derive(("pc-votes", kind), lambda idx: marker)
                assert base is not marker

    def test_counting_never_mutates_shared_state(self):
        # A node's deltas (back-fill, own substitution) must not leak
        # into the shared tallies: a second node with a bare config
        # counting after a delta-heavy node sees the raw votes.
        for seed in range(10):
            rng = make_rng(seed, salt=13)
            messages = random_messages(rng, 30)
            membership = random_membership(rng)
            index = InboxIndex(messages)
            heavy = random_instance(rng)
            heavy.join_phase_fill = True
            assert_counts_coherent(
                heavy, Inbox(index=index), messages, membership
            )
            bare = ConsensusInstance(INSTANCE, start_round=3, value=BOTTOM)
            bare.join_phase_fill = False
            assert_counts_coherent(
                bare, Inbox(index=index), messages, frozenset()
            )
            # And the heavy node's answers are stable on re-query.
            assert_counts_coherent(
                heavy, Inbox(index=index), messages, membership
            )

    def test_exact_tie_between_substitution_and_base_best(self):
        # Two distinct payloads with equal reprs, brought to equal
        # counts by the substitution delta: insertion order must decide,
        # exactly as in the naive rebuild.
        messages = [
            Message(0, KIND_PREFER, TWIN_A, instance=INSTANCE),
            Message(1, KIND_PREFER, TWIN_A, instance=INSTANCE),
            Message(2, KIND_PREFER, TWIN_B, instance=INSTANCE),
        ]
        membership = frozenset({0, 1, 2, 3})  # node 3 is silent
        instance = ConsensusInstance(INSTANCE, start_round=3, value=BOTTOM)
        instance.join_phase_fill = False
        instance._last_action[KIND_PREFER] = TWIN_B
        expect = naive_count(
            messages,
            KIND_PREFER,
            membership,
            instance.join_phase_fill,
            instance._last_action,
        )
        got = instance._count(Inbox(messages), KIND_PREFER, membership)
        assert got == expect
        assert got == (TWIN_A, 2)  # first-inserted wins the exact tie


# ----------------------------------------------------------------------
# Columnar round plane: _count over staged columns vs the object path.
# ----------------------------------------------------------------------
def random_columnar_stream(rng, size):
    """A staging stream of tagged-instance traffic: scalar broadcasts,
    batched fan-outs, and exact repeats, over the same pools as
    :func:`random_messages` (twins and ``"__bottom__"`` included)."""
    stream = []
    while len(stream) < size:
        sender = rng.choice(SENDERS)
        kind = rng.choice(KINDS)
        if rng.random() < 0.3:
            payloads = tuple(
                rng.choice(PAYLOADS)
                for _ in range(rng.randrange(1, 5))
            )
            stream.append(("batch", sender, kind, payloads))
        else:
            stream.append(("scalar", sender, kind, rng.choice(PAYLOADS)))
        if rng.random() < 0.2:
            stream.append(rng.choice(stream))
    return stream[:size]


def stage_columnar(stream):
    """Stage the stream into fresh columns and expand it for the oracle.

    Returns ``(inbox, expanded)`` where the inbox rides a
    :class:`ColumnarIndex` and ``expanded`` is the per-send message list
    the object path would have staged (duplicates retained — the naive
    oracle counts sender *sets*, and the votes-dict insertion order of
    first occurrences is identical either way).
    """
    plane = ColumnarPlane()
    cols = plane.new_round()
    expanded = []
    for entry in stream:
        if entry[0] == "scalar":
            _, sender, kind, payload = entry
            cols.stage(sender, kind, payload, INSTANCE)
            expanded.append(Message(sender, kind, payload, INSTANCE))
        else:
            _, sender, kind, payloads = entry
            cols.stage_batch(
                sender, plane.intern_batch(kind, payloads, INSTANCE)
            )
            expanded.extend(
                Message(sender, kind, p, INSTANCE) for p in payloads
            )
    return Inbox(index=ColumnarIndex(cols)), expanded


class TestColumnarTallyCoherence:
    def test_count_over_columns_matches_naive_reference(self):
        for seed in range(40):
            rng = make_rng(seed, salt=14)
            stream = random_columnar_stream(rng, rng.randrange(0, 50))
            tagged, expanded = stage_columnar(stream)
            membership = random_membership(rng)
            instance = random_instance(rng)
            assert_counts_coherent(instance, tagged, expanded, membership)

    def test_shared_columnar_index_serves_divergent_nodes(self):
        # The columnar hot path: one round's columns, many recipients.
        # Every node layers its own deltas over the one shared tally.
        for seed in range(10):
            rng = make_rng(seed, salt=15)
            stream = random_columnar_stream(rng, 40)
            tagged, expanded = stage_columnar(stream)
            index = tagged.index
            memberships = [random_membership(rng) for _ in range(3)]
            for node in range(6):
                instance = random_instance(rng)
                assert_counts_coherent(
                    instance,
                    Inbox(index=index),
                    expanded,
                    memberships[node % len(memberships)],
                )

    def test_exact_twin_tie_through_batched_staging(self):
        # The twins arrive inside one batched fan-out; the tie must
        # still fall to first staging order, exactly as scalar staging
        # and the naive rebuild resolve it.
        plane = ColumnarPlane()
        cols = plane.new_round()
        cols.stage_batch(
            0, plane.intern_batch(KIND_PREFER, (TWIN_A, TWIN_B), INSTANCE)
        )
        cols.stage(1, KIND_PREFER, TWIN_A, INSTANCE)
        cols.stage(2, KIND_PREFER, TWIN_B, INSTANCE)
        expanded = [
            Message(0, KIND_PREFER, TWIN_A, INSTANCE),
            Message(0, KIND_PREFER, TWIN_B, INSTANCE),
            Message(1, KIND_PREFER, TWIN_A, INSTANCE),
            Message(2, KIND_PREFER, TWIN_B, INSTANCE),
        ]
        instance = ConsensusInstance(INSTANCE, start_round=3, value=BOTTOM)
        instance.join_phase_fill = False
        box = Inbox(index=ColumnarIndex(cols))
        got = instance._count(box, KIND_PREFER, frozenset(range(3)))
        expect = naive_count(
            expanded, KIND_PREFER, frozenset(range(3)), False, {}
        )
        assert got == expect
        assert got == (TWIN_A, 2)  # first-staged twin wins the tie

    def test_columnar_network_replays_object_path_at_scale(self):
        # End-to-end equivalence at n >= 500: the columnar plane must be
        # observationally identical to the object path — same outputs,
        # same round count, same send/delivery totals, same protocol
        # trace.  Only node 0 inputs the pair ("b", 20), so 499 nodes
        # join that instance through the join-round ⊥ back-fill, and the
        # byzantine noise sender sits outside the frozen membership,
        # exercising the restricted-membership tally path.
        from repro.adversary import RandomNoiseStrategy

        def build(columnar):
            n = 500
            net = SyncNetwork(seed=7, columnar=columnar)
            for i in range(n):
                inputs = {"a": 10}
                if i == 0:
                    inputs["b"] = 20  # 499 nodes join "b" via back-fill
                net.add_correct(i, ParallelConsensus(inputs))
            net.add_byzantine(n, RandomNoiseStrategy())
            net.run(60)
            return net

        with_columns = build(columnar=True)
        object_path = build(columnar=False)
        assert with_columns.outputs() == object_path.outputs()
        assert with_columns.round == object_path.round
        assert (
            with_columns.metrics.sends_total
            == object_path.metrics.sends_total
        )
        assert (
            with_columns.metrics.deliveries_total
            == object_path.metrics.deliveries_total
        )
        assert list(with_columns.trace) == list(object_path.trace)
        assert with_columns.outputs(), "the run must actually decide"

    def test_columnar_join_backfill_matches_object_path_at_scale(self):
        # Network-level join-round back-fill at n >= 500: a scheduled
        # joiner (delivered the previous round's broadcasts through the
        # extras layer over the shared columnar index) and a forced
        # leave must leave every node's per-round sender view identical
        # to the object path's.
        from repro.sim.node import NodeApi, Protocol

        class Beat(Protocol):
            def __init__(self):
                super().__init__()
                self.heard_by_round = {}

            def on_round(self, api: NodeApi, inbox: Inbox) -> None:
                self.heard_by_round[api.round] = sorted(inbox.senders())
                api.broadcast("beat", api.round)

        def build(columnar):
            n = 500
            schedule = MembershipSchedule()
            schedule.join(3, n, Beat)
            schedule.leave(5, 1)
            net = SyncNetwork(seed=2, membership=schedule, columnar=columnar)
            for i in range(n):
                net.add_correct(i, Beat())
            net.run(6, until_all_halted=False)
            return {
                nid: state.protocol.heard_by_round
                for nid, state in net._nodes.items()
            }

        with_columns = build(columnar=True)
        object_path = build(columnar=False)
        assert with_columns == object_path
        joiner = with_columns[500]
        assert min(joiner) == 3  # first active round
        assert 1 not in with_columns[0][6]  # the forced leave took
