"""Property-based tests for the Inbox counting laws."""

from hypothesis import given, strategies as st

from repro.sim.inbox import Inbox
from repro.sim.message import Message

messages = st.lists(
    st.builds(
        Message,
        sender=st.integers(min_value=0, max_value=8),
        kind=st.sampled_from(["a", "b", "c"]),
        payload=st.integers(min_value=0, max_value=3),
        instance=st.sampled_from([None, "x", "y"]),
    ),
    max_size=40,
)


class TestInboxLaws:
    @given(msgs=messages)
    def test_count_equals_len_senders(self, msgs):
        box = Inbox(msgs)
        for kind in ("a", "b", "c"):
            assert box.count(kind) == len(box.senders(kind))

    @given(msgs=messages)
    def test_payload_counts_partition_senders(self, msgs):
        box = Inbox(msgs)
        for kind in ("a", "b", "c"):
            counts = box.payload_counts(kind)
            # each (payload -> count) is bounded by the kind's senders,
            # and the max single-payload count never exceeds it
            total_senders = box.count(kind)
            assert all(c <= total_senders for c in counts.values())
            if counts:
                _value, best = box.best_payload(kind)
                assert best == max(counts.values())

    @given(msgs=messages)
    def test_filter_composes(self, msgs):
        box = Inbox(msgs)
        assert box.filter("a").filter(instance="x").senders() == (
            box.senders("a", instance="x")
        )

    @given(msgs=messages)
    def test_merged_with_is_additive_on_fresh_senders(self, msgs):
        box = Inbox(msgs)
        phantom = Message(sender=999, kind="a", payload=0)
        merged = box.merged_with([phantom])
        assert merged.count("a", payload=0) == box.count("a", payload=0) + 1
        assert box.count("a", payload=0) == len(
            box.senders("a", payload=0)
        )  # original untouched

    @given(msgs=messages)
    def test_best_payload_is_stable_under_reordering(self, msgs):
        forward = Inbox(msgs).best_payload("a")
        backward = Inbox(reversed(msgs)).best_payload("a")
        assert forward == backward

    @given(msgs=messages)
    def test_received_from_consistent_with_from_sender(self, msgs):
        box = Inbox(msgs)
        for sender in box.senders():
            assert box.received_from(sender)
            assert len(box.from_sender(sender)) >= 1
