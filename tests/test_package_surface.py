"""Structural tests of the public package surface.

Cheap insurance against the silent breakages a library accumulates:
names exported in ``__all__`` that do not exist, public modules without
docstrings, and the CLI registry drifting from the adversary registry.
"""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.adversary",
    "repro.core",
    "repro.baselines",
    "repro.asyncsim",
    "repro.net",
    "repro.analysis",
]


def iter_public_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package_name, package
        for info in pkgutil.iter_modules(package.__path__ if hasattr(
                package, "__path__") else []):
            if info.name.startswith("_"):
                continue
            yield (
                f"{package_name}.{info.name}",
                importlib.import_module(f"{package_name}.{info.name}"),
            )


ALL_MODULES = dict(iter_public_modules())


class TestSurface:
    @pytest.mark.parametrize("name", sorted(ALL_MODULES))
    def test_module_has_docstring(self, name):
        module = ALL_MODULES[name]
        assert module.__doc__, f"{name} lacks a module docstring"
        assert len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        package = importlib.import_module(name)
        exported = getattr(package, "__all__", [])
        for symbol in exported:
            assert hasattr(package, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_is_sorted(self, name):
        package = importlib.import_module(name)
        exported = list(getattr(package, "__all__", []))
        assert exported == sorted(exported), f"{name}.__all__ unsorted"

    def test_version_consistency(self):
        import tomllib

        with open("pyproject.toml", "rb") as handle:
            pyproject = tomllib.load(handle)
        assert repro.__version__ == pyproject["project"]["version"]

    def test_cli_covers_registry(self):
        from repro.adversary import STRATEGY_BUILDERS
        from repro.cli import build_parser

        parser = build_parser()
        # find the run subparser's --adversary choices
        text = parser.format_help()
        # cheap but effective: every registered strategy must be usable
        for name in STRATEGY_BUILDERS:
            args = build_parser().parse_args(
                ["run", "consensus", "--adversary", name]
            )
            assert args.adversary == name

    def test_public_protocols_are_protocols(self):
        from repro.core import (
            ApproximateAgreement,
            BinaryKingConsensus,
            ByzantineRenaming,
            EarlyConsensus,
            InteractiveConsistency,
            ParallelConsensus,
            ReliableBroadcast,
            ReliableChannel,
            ReplicatedKVStore,
            RotorCoordinator,
            TerminatingReliableBroadcast,
            TotalOrderNode,
        )
        from repro.sim.node import Protocol

        for cls in (
            ApproximateAgreement,
            BinaryKingConsensus,
            ByzantineRenaming,
            EarlyConsensus,
            InteractiveConsistency,
            ParallelConsensus,
            ReliableBroadcast,
            ReliableChannel,
            ReplicatedKVStore,
            RotorCoordinator,
            TerminatingReliableBroadcast,
            TotalOrderNode,
        ):
            assert issubclass(cls, Protocol), cls
