"""Tests for repro.sim.inbox — the quorum-counting helpers."""

from repro.sim.inbox import Inbox
from repro.sim.message import Message


def inbox_of(*specs):
    """Build an inbox from (sender, kind, payload[, instance]) tuples."""
    messages = []
    for spec in specs:
        sender, kind, payload = spec[0], spec[1], spec[2]
        instance = spec[3] if len(spec) > 3 else None
        messages.append(Message(sender, kind, payload, instance))
    return Inbox(messages)


class TestCounting:
    def test_count_distinct_senders(self):
        box = inbox_of((1, "echo", "m"), (2, "echo", "m"), (3, "echo", "m"))
        assert box.count("echo", payload="m") == 3

    def test_count_is_per_sender_not_per_message(self):
        # Same sender twice with the same payload counts once (the network
        # dedups, but the inbox must be robust regardless).
        box = Inbox(
            [Message(1, "echo", "m"), Message(1, "echo", "m")]
        )
        assert box.count("echo", payload="m") == 1

    def test_count_separates_payloads(self):
        box = inbox_of((1, "echo", "m"), (2, "echo", "w"))
        assert box.count("echo", payload="m") == 1
        assert box.count("echo", payload="w") == 1
        assert box.count("echo") == 2

    def test_senders(self):
        box = inbox_of((1, "a", None), (2, "b", None), (1, "b", None))
        assert box.senders() == {1, 2}
        assert box.senders("b") == {1, 2}
        assert box.senders("a") == {1}

    def test_payload_counts(self):
        box = inbox_of(
            (1, "input", 0), (2, "input", 0), (3, "input", 1)
        )
        counts = box.payload_counts("input")
        assert counts[0] == 2
        assert counts[1] == 1

    def test_best_payload(self):
        box = inbox_of(
            (1, "input", 0), (2, "input", 0), (3, "input", 1)
        )
        value, count = box.best_payload("input")
        assert (value, count) == (0, 2)

    def test_best_payload_empty(self):
        assert Inbox().best_payload("input") == (None, 0)

    def test_best_payload_tie_is_deterministic(self):
        box_a = inbox_of((1, "input", 0), (2, "input", 1))
        box_b = inbox_of((2, "input", 1), (1, "input", 0))
        assert box_a.best_payload("input") == box_b.best_payload("input")

    def test_same_sender_two_payloads_counts_for_both(self):
        # A Byzantine node sending two different values backs each once.
        box = inbox_of((1, "input", 0), (1, "input", 1), (2, "input", 0))
        counts = box.payload_counts("input")
        assert counts[0] == 2
        assert counts[1] == 1


class TestFiltering:
    def test_filter_kind(self):
        box = inbox_of((1, "a", None), (2, "b", None))
        assert len(box.filter("a")) == 1

    def test_filter_instance(self):
        box = inbox_of((1, "input", 0, "x"), (2, "input", 0, "y"))
        assert box.filter("input", instance="x").senders() == {1}

    def test_from_sender(self):
        box = inbox_of((1, "a", None), (2, "a", None))
        assert len(box.from_sender(1)) == 1

    def test_received_from(self):
        box = inbox_of((7, "msg", "hello"),)
        assert box.received_from(7, "msg")
        assert box.received_from(7, "msg", payload="hello")
        assert not box.received_from(7, "msg", payload="bye")
        assert not box.received_from(8, "msg")

    def test_kinds_and_instances(self):
        box = inbox_of((1, "a", None, "i"), (2, "b", None))
        assert box.kinds() == {"a", "b"}
        assert box.instances() == {"i"}

    def test_merged_with(self):
        box = inbox_of((1, "input", 0))
        merged = box.merged_with([Message(2, "input", 0)])
        assert merged.count("input", payload=0) == 2
        # the original is untouched
        assert box.count("input", payload=0) == 1

    def test_bool_and_len(self):
        assert not Inbox()
        assert len(Inbox()) == 0
        assert inbox_of((1, "a", None))


class TestIndexViews:
    def test_restricted_to_is_identity_when_all_members(self):
        box = inbox_of((1, "a", None), (2, "b", None))
        assert box.restricted_to(frozenset({1, 2, 3})) is box

    def test_restricted_to_drops_strangers(self):
        box = inbox_of((1, "a", None), (9, "a", None))
        restricted = box.restricted_to(frozenset({1}))
        assert restricted.senders() == {1}
        assert len(restricted) == 1

    def test_single_axis_filters_are_cached_views(self):
        box = inbox_of((1, "a", None, "i"), (2, "b", None))
        assert box.filter("a") is box.filter("a")
        assert box.filter(instance="i") is box.filter(instance="i")
        assert box.from_sender(1) is box.from_sender(1)
        assert box.filter() is box

    def test_payload_counts_returns_a_fresh_counter(self):
        # Callers may mutate the Counter (e.g. += phantom votes); the
        # shared index must hand out copies, never its own cache.
        box = inbox_of((1, "input", 0), (2, "input", 0))
        first = box.payload_counts("input")
        first[0] = 999
        assert box.payload_counts("input")[0] == 2

    def test_senders_returns_a_fresh_set(self):
        box = inbox_of((1, "a", None))
        grabbed = box.senders()
        grabbed.add(42)
        assert box.senders() == {1}

    def test_merged_with_stacks_repeatedly(self):
        box = inbox_of((1, "input", 0))
        merged = box.merged_with([Message(2, "input", 0)]).merged_with(
            [Message(3, "input", 1)]
        )
        assert merged.best_payload("input") == (0, 2)
        assert len(merged) == 3

    def test_merged_duplicate_sender_not_double_counted(self):
        box = inbox_of((1, "input", 0))
        merged = box.merged_with([Message(1, "input", 0)])
        assert merged.count("input", payload=0) == 1

    def test_query_after_priming_other_view_of_same_index(self):
        from repro.sim.inbox import InboxIndex

        index = InboxIndex(
            [Message(1, "input", 0), Message(2, "input", 1)]
        )
        primer, reader = Inbox(index=index), Inbox(index=index)
        assert primer.best_payload("input") == reader.best_payload("input")
        assert reader.senders("input") == {1, 2}
