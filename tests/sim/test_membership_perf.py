"""Round-bucketed membership lookups must not scan the whole schedule.

``joins_at``/``leaves_at`` are called every round by the engine; with a
10k-entry campaign-scale schedule, a linear scan per call turns the run
loop quadratic in schedule size.  The bucketed implementation answers
each round from a dict, so querying every round of a huge schedule
costs about the same as building it.
"""

import time

from repro.sim.membership import MembershipSchedule

ENTRIES = 10_000


def big_schedule() -> MembershipSchedule:
    schedule = MembershipSchedule()
    for k in range(ENTRIES):
        schedule.join(k % 2_000, 100_000 + k, lambda: None)
        schedule.leave(k % 2_000, 200_000 + k)
    return schedule


def test_lookups_are_bucketed_not_scanned():
    schedule = big_schedule()
    # Warm the buckets, then time one engine-like pass: every round
    # queried once.  A per-call linear scan over 10k entries would do
    # ~20M spec touches and take seconds; buckets answer from a dict.
    schedule.joins_at(0)
    start = time.perf_counter()
    total_joins = total_leaves = 0
    for round_no in range(2_000):
        total_joins += len(schedule.joins_at(round_no))
        total_leaves += len(schedule.leaves_at(round_no))
    elapsed = time.perf_counter() - start
    assert total_joins == ENTRIES
    assert total_leaves == ENTRIES
    assert elapsed < 0.5, (
        f"querying 2k rounds of a {ENTRIES}-entry schedule took "
        f"{elapsed:.2f}s — lookups are scanning, not bucketed"
    )


def test_buckets_rebuild_after_mutation():
    schedule = MembershipSchedule()
    schedule.join(3, 7, lambda: None)
    assert [j.node_id for j in schedule.joins_at(3)] == [7]
    schedule.join(3, 8, lambda: None)
    assert [j.node_id for j in schedule.joins_at(3)] == [7, 8]
    schedule.leave(4, 7)
    assert [leave.node_id for leave in schedule.leaves_at(4)] == [7]
    assert schedule.leaves_at(3) == []
