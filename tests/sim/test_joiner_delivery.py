"""Regression tests for broadcast delivery to joining nodes.

The model says a broadcast "reaches every node, including ones it has
never heard of".  The pre-fix engine resolved broadcast recipients at
*send* time, so a node joining via :class:`MembershipSchedule` at round
``r + 1`` silently missed every round-``r`` broadcast — breaking the
``g <= n_v`` invariant for late joiners.  These tests fail on that
engine: recipients must be resolved at delivery time.

Direct sends are unaffected: they are addressed to one concrete node id
at send time and must never leak to a joiner.
"""

from repro.core.quorum import ViewTracker
from repro.sim.inbox import Inbox
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.node import NodeApi, Protocol


class BeatAndWhisper(Protocol):
    """Broadcasts every round; direct-sends a whisper to every contact."""

    def __init__(self):
        super().__init__()
        self.heard_by_round = {}

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.heard_by_round[api.round] = sorted(
            (m.sender, m.kind) for m in inbox
        )
        api.broadcast("beat", api.round)
        for sender in sorted(inbox.senders()):
            if sender != api.node_id:
                api.send(sender, "whisper", api.round)


class TrackingJoiner(Protocol):
    """Joiner that maintains n_v the way the paper's protocols do."""

    def __init__(self):
        super().__init__()
        self.tracker = ViewTracker()
        self.heard_by_round = {}
        self.n_v_by_round = {}

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.tracker.observe(inbox)
        self.heard_by_round[api.round] = sorted(
            (m.sender, m.kind) for m in inbox
        )
        self.n_v_by_round[api.round] = self.tracker.n_v
        api.broadcast("beat", api.round)


def run_join_at(join_round: int, rounds: int = 7):
    schedule = MembershipSchedule()
    joiner = TrackingJoiner()
    schedule.join(join_round, 99, lambda: joiner)
    net = SyncNetwork(membership=schedule)
    veterans = {1: BeatAndWhisper(), 2: BeatAndWhisper()}
    for node_id, protocol in veterans.items():
        net.add_correct(node_id, protocol)
    net.run(rounds, until_all_halted=False)
    return net, joiner, veterans


class TestJoinerBroadcastDelivery:
    def test_join_at_r_plus_1_receives_round_r_broadcasts(self):
        # Joins at round 4; round-4 inboxes hold the round-3 sends.
        _net, joiner, _ = run_join_at(4)
        assert (1, "beat") in joiner.heard_by_round[4]
        assert (2, "beat") in joiner.heard_by_round[4]

    def test_joiner_never_receives_direct_sends_addressed_elsewhere(self):
        # The veterans whisper to each other every round from round 2 on;
        # none of those directs may leak into the joiner's inboxes.
        _net, joiner, _ = run_join_at(4)
        for round_no, heard in joiner.heard_by_round.items():
            whispers = [(s, k) for s, k in heard if k == "whisper"]
            if round_no <= 5:
                # The joiner's first broadcast (round 4) lands at round
                # 5; only from round 6 can a whisper be addressed to it.
                assert whispers == []
            else:
                assert set(whispers) <= {(1, "whisper"), (2, "whisper")}

    def test_n_v_converges_immediately_for_late_joiner(self):
        # g <= n_v must hold from the joiner's very first round: both
        # live correct veterans broadcast at round 3, so the round-4
        # inbox already yields n_v = 2 (the pre-fix engine gave 0).
        _net, joiner, _ = run_join_at(4)
        assert joiner.n_v_by_round[4] == 2
        # Self-delivery of its own round-4 broadcast arrives at round 5.
        assert joiner.n_v_by_round[5] == 3

    def test_veterans_gain_the_joiner_as_contact(self):
        # Symmetric direction: the joiner's own broadcasts reach the
        # veterans, who may then whisper back (contact tracking works
        # across the join).
        _net, joiner, veterans = run_join_at(4)
        assert (99, "beat") in veterans[1].heard_by_round[5]
        assert (1, "whisper") in joiner.heard_by_round[6]

    def test_join_at_round_2_sees_initial_broadcasts(self):
        # The earliest possible join: round 2 delivery includes every
        # round-1 announcement, exactly what the paper's initialization
        # argument needs.
        _net, joiner, _ = run_join_at(2)
        assert {(1, "beat"), (2, "beat")} <= set(joiner.heard_by_round[2])
        assert joiner.n_v_by_round[2] == 2
