"""The lossy-network ablation instrument."""

import pytest

from repro.core.consensus import EarlyConsensus
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.errors import SimulationError
from repro.sim.lossy import LossyNetwork
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


def consensus_run(drop_rate, seed=0, max_rounds=60):
    rng = make_rng(seed)
    ids = sparse_ids(7, rng)
    net = LossyNetwork(drop_rate, seed=seed)
    for index, node_id in enumerate(ids):
        net.add_correct(node_id, EarlyConsensus(index % 2))
    net.run(max_rounds)
    return net


class TestLossyNetwork:
    def test_validates_rate(self):
        with pytest.raises(ValueError):
            LossyNetwork(1.5)
        with pytest.raises(ValueError):
            LossyNetwork(-0.1)

    def test_zero_rate_is_exactly_sync_network(self):
        lossless = consensus_run(0.0)
        rng = make_rng(0)
        ids = sparse_ids(7, rng)
        plain = SyncNetwork(seed=0)
        for index, node_id in enumerate(ids):
            plain.add_correct(node_id, EarlyConsensus(index % 2))
        plain.run(60)
        assert lossless.outputs() == plain.outputs()
        assert lossless.dropped == 0

    def test_drops_are_counted_and_seeded(self):
        a = consensus_run(0.1, seed=3, max_rounds=25)
        b = consensus_run(0.1, seed=3, max_rounds=25)
        assert a.dropped == b.dropped > 0

    def test_full_loss_delivers_nothing(self):
        rng = make_rng(1)
        ids = sparse_ids(4, rng)
        net = LossyNetwork(1.0, seed=1)
        for node_id in ids:
            net.add_correct(node_id, ReliableBroadcast(ids[0], "m"))
        net.run(6, until_all_halted=False)
        assert net.metrics.deliveries_total == 0

    def test_heavy_loss_erodes_consensus(self):
        """The synchrony assumption is load-bearing: at 40% loss the
        protocol misbehaves (non-termination or disagreement) on most
        seeds."""
        broken = 0
        for seed in range(6):
            try:
                net = consensus_run(0.4, seed=seed, max_rounds=60)
                outputs = net.outputs()
                if len(set(outputs.values())) != 1 or len(outputs) != 7:
                    broken += 1
            except SimulationError:
                broken += 1
        assert broken >= 3

    def test_light_loss_sometimes_survives(self):
        """Sanity for the instrument itself: 1% loss is survivable at
        least sometimes — erosion is gradual, not a cliff."""
        survived = 0
        for seed in range(6):
            try:
                net = consensus_run(0.01, seed=seed, max_rounds=80)
                if len(set(net.outputs().values())) == 1:
                    survived += 1
            except SimulationError:
                pass
        assert survived >= 3


class TestColumnarAutoFallback:
    """LossyNetwork overrides ``_filter_deliveries``, so the engine must
    silently downgrade off the columnar plane — and say so on the bus."""

    def test_lossy_rides_the_object_path(self):
        net = consensus_run(0.0, seed=2)
        assert net._plane is None
        summary = net.metrics.summary()
        assert summary["columnar_active"] is False
        assert summary["plane_fallback"] == "filter-override"

    def test_object_path_matches_columnar_results(self):
        # Same seed, same protocols: the fallback is an implementation
        # detail, not a behaviour change.
        lossy = consensus_run(0.0, seed=4)
        rng = make_rng(4)
        ids = sparse_ids(7, rng)
        columnar = SyncNetwork(seed=4)
        for index, node_id in enumerate(ids):
            columnar.add_correct(node_id, EarlyConsensus(index % 2))
        columnar.run(60)
        assert columnar._plane is not None
        assert lossy.outputs() == columnar.outputs()
        assert (
            lossy.metrics.deliveries_total
            == columnar.metrics.deliveries_total
        )

    def test_downgrade_emits_one_plane_stats_event(self):
        rng = make_rng(5)
        ids = sparse_ids(7, rng)
        net = LossyNetwork(0.0, seed=5)
        events = []
        net.bus.subscribe(events.append, "plane-stats")
        for index, node_id in enumerate(ids):
            net.add_correct(node_id, EarlyConsensus(index % 2))
        net.run(60)
        downgrades = [e for e in events if not e.columnar]
        assert len(downgrades) == 1
        assert downgrades == events
        (event,) = downgrades
        assert event.fallback == "filter-override"
        assert event.round == 1
        assert event.materialized_messages == 0

    def test_columnar_control_reports_active_plane(self):
        rng = make_rng(5)
        ids = sparse_ids(7, rng)
        net = SyncNetwork(seed=5)
        events = []
        net.bus.subscribe(events.append, "plane-stats")
        for index, node_id in enumerate(ids):
            net.add_correct(node_id, EarlyConsensus(index % 2))
        net.run(60)
        assert events
        assert all(e.columnar and e.fallback is None for e in events)
        assert net.metrics.summary()["columnar_active"] is True
