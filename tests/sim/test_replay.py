"""Record/replay: runs are reproducible witnesses."""

from repro.adversary import QuorumSplitterStrategy
from repro.core.consensus import EarlyConsensus
from repro.sim.replay import (
    RunRecording,
    record_scenario,
    verify_replay,
)
from repro.sim.runner import Scenario


def scenario(seed=5):
    return Scenario(
        correct=5,
        byzantine=1,
        protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
        strategy_factory=lambda nid, i: QuorumSplitterStrategy(
            EarlyConsensus(0)
        ),
        seed=seed,
        rushing=True,
        max_rounds=200,
    )


class TestRecording:
    def test_recording_captures_deliveries_and_outputs(self):
        result, recording = record_scenario(scenario())
        assert recording.deliveries
        assert recording.rounds == result.rounds
        assert len(recording.outputs) == 5

    def test_jsonl_roundtrip(self):
        _result, recording = record_scenario(scenario())
        text = recording.to_jsonl()
        loaded = RunRecording.from_jsonl(text)
        assert loaded.outputs == recording.outputs
        assert loaded.rounds == recording.rounds
        assert loaded.deliveries == recording.deliveries

    def test_save_and_load(self, tmp_path):
        _result, recording = record_scenario(scenario())
        path = tmp_path / "run.jsonl"
        recording.save(path)
        assert RunRecording.load(path).deliveries == recording.deliveries

    def test_recording_result_matches_plain_run(self):
        from repro.sim.runner import run_scenario

        plain = run_scenario(scenario())
        recorded_result, _recording = record_scenario(scenario())
        assert plain.outputs == recorded_result.outputs
        assert plain.rounds == recorded_result.rounds


class TestVerifyReplay:
    def test_identical_replay_has_no_differences(self):
        _result, recording = record_scenario(scenario())
        assert verify_replay(scenario(), recording) == []

    def test_different_seed_detected(self):
        _result, recording = record_scenario(scenario(seed=5))
        differences = verify_replay(scenario(seed=6), recording)
        assert differences

    def test_tampered_output_detected(self):
        _result, recording = record_scenario(scenario())
        key = next(iter(recording.outputs))
        recording.outputs[key] = "tampered"
        differences = verify_replay(scenario(), recording)
        assert any("outputs differ" in d for d in differences)

    def test_tampered_delivery_detected(self):
        _result, recording = record_scenario(scenario())
        recording.deliveries[0] = type(recording.deliveries[0])(
            round=1,
            sender=999,
            recipient=1,
            kind="ghost",
            payload_repr="None",
            instance_repr="None",
        )
        differences = verify_replay(scenario(), recording)
        assert any("missing in replay" in d for d in differences)
