"""Tests for metrics, trace, membership, and rng."""

import pytest

from repro.sim.membership import JoinSpec, MembershipSchedule
from repro.sim.metrics import Metrics
from repro.sim.rng import consecutive_ids, make_rng, sparse_ids
from repro.sim.trace import Trace


class TestMetrics:
    def test_record_send_updates_all_counters(self):
        metrics = Metrics()
        metrics.record_send(1, sender=7, kind="echo")
        metrics.record_send(1, sender=7, kind="echo")
        metrics.record_send(2, sender=8, kind="init")
        assert metrics.sends_total == 3
        assert metrics.sends_by_node[7] == 2
        assert metrics.sends_by_kind["echo"] == 2
        assert metrics.sends_by_round[1] == 2

    def test_deliveries(self):
        metrics = Metrics()
        metrics.record_delivery(3, count=5)
        assert metrics.deliveries_total == 5
        assert metrics.deliveries_by_round[3] == 5

    def test_sends_per_round(self):
        metrics = Metrics()
        metrics.record_round(4)
        metrics.record_send(1, 1, "a")
        metrics.record_send(2, 1, "a")
        assert metrics.sends_per_round == pytest.approx(0.5)

    def test_sends_per_round_zero_rounds(self):
        assert Metrics().sends_per_round == 0.0

    def test_summary_keys(self):
        metrics = Metrics()
        metrics.record_round(1)
        metrics.record_send(1, 1, "a")
        summary = metrics.summary()
        assert {"rounds", "sends_total", "deliveries_total"} <= set(summary)


class TestTrace:
    def test_record_and_filter(self):
        trace = Trace()
        trace.record(1, 10, "accept", {"tag": "x"})
        trace.record(2, 11, "accept", {"tag": "x"})
        trace.record(2, 10, "decide", {"value": 1})
        assert len(trace.of("accept")) == 2
        assert len(trace.of("accept", node=10)) == 1
        assert len(trace) == 3

    def test_first(self):
        trace = Trace()
        trace.record(5, 1, "e", {})
        trace.record(3, 2, "e", {})
        assert trace.first("e").round == 3
        assert trace.first("missing") is None

    def test_rounds_of(self):
        trace = Trace()
        trace.record(4, 1, "accept", {})
        trace.record(2, 1, "accept", {})
        trace.record(3, 2, "accept", {})
        assert trace.rounds_of("accept") == {1: 2, 2: 3}

    def test_event_get(self):
        trace = Trace()
        trace.record(1, 1, "e", {"k": "v"})
        event = trace.events[0]
        assert event.get("k") == "v"
        assert event.get("missing", 9) == 9


class TestMembership:
    def test_joins_and_leaves_at(self):
        schedule = MembershipSchedule()
        schedule.join(3, 100, lambda: None)
        schedule.join(3, 101, lambda: None, byzantine=True)
        schedule.leave(5, 100)
        assert [j.node_id for j in schedule.joins_at(3)] == [100, 101]
        assert schedule.joins_at(4) == []
        assert [l.node_id for l in schedule.leaves_at(5)] == [100]
        assert not schedule.is_empty()

    def test_empty(self):
        assert MembershipSchedule().is_empty()

    def test_join_spec_carries_byzantine_flag(self):
        spec = JoinSpec(1, 2, lambda: None, byzantine=True)
        assert spec.byzantine


class TestRng:
    def test_make_rng_none_is_deterministic(self):
        assert make_rng(None).random() == make_rng(0).random()

    def test_sparse_ids_unique_sorted(self):
        ids = sparse_ids(50, make_rng(1))
        assert len(set(ids)) == 50
        assert ids == sorted(ids)

    def test_sparse_ids_deterministic(self):
        assert sparse_ids(10, make_rng(5)) == sparse_ids(10, make_rng(5))

    def test_sparse_ids_overflow(self):
        with pytest.raises(ValueError):
            sparse_ids(11, make_rng(0), id_space=10)

    def test_consecutive_ids(self):
        assert consecutive_ids(3) == [0, 1, 2]
        assert consecutive_ids(3, start=5) == [5, 6, 7]
