"""Tests for repro.sim.message."""

import pytest

from repro.sim.message import BROADCAST, Message, Outbox, Send


class TestMessage:
    def test_immutable(self):
        message = Message(sender=1, kind="echo", payload="x")
        with pytest.raises(AttributeError):
            message.kind = "other"

    def test_hashable_for_dedup(self):
        a = Message(1, "echo", ("m", 2))
        b = Message(1, "echo", ("m", 2))
        assert a == b
        assert len({a, b}) == 1

    def test_distinct_payloads_not_deduped(self):
        a = Message(1, "echo", "x")
        b = Message(1, "echo", "y")
        assert len({a, b}) == 2

    def test_matches_kind(self):
        message = Message(1, "echo", "x")
        assert message.matches("echo")
        assert not message.matches("init")

    def test_matches_payload_with_ellipsis_wildcard(self):
        message = Message(1, "echo", None)
        assert message.matches("echo")  # payload wildcard
        assert message.matches("echo", payload=None)  # explicit None
        assert not message.matches("echo", payload="x")

    def test_matches_instance(self):
        message = Message(1, "input", 0, instance=("to", 3))
        assert message.matches("input", instance=("to", 3))
        assert not message.matches("input", instance=("to", 4))
        assert message.matches(None)  # kind wildcard


class TestSend:
    def test_stamped_injects_sender(self):
        send = Send(BROADCAST, "echo", "p")
        wire = send.stamped(42)
        assert wire.sender == 42
        assert wire.kind == "echo"
        assert wire.payload == "p"

    def test_stamped_preserves_instance(self):
        send = Send(7, "input", 1, instance="id-1")
        assert send.stamped(3).instance == "id-1"


class TestOutbox:
    def test_broadcast_and_send_collected_in_order(self):
        outbox = Outbox()
        outbox.broadcast("init")
        outbox.send(5, "ack", 3)
        sends = list(outbox)
        assert len(outbox) == 2
        assert sends[0].dest is BROADCAST
        assert sends[1].dest == 5
        assert sends[1].payload == 3
