"""Tests for the scenario harness."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.sim.runner import Scenario, run_scenario


class InstantDecider(Protocol):
    def __init__(self, value):
        super().__init__()
        self.value = value

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.decide(api, self.value)


class Silent:
    def on_round(self, view):
        return ()


class TestScenarioValidation:
    def test_needs_correct_nodes(self):
        with pytest.raises(ConfigurationError):
            Scenario(correct=0, protocol_factory=lambda n, i: None).validate()

    def test_byzantine_needs_strategy(self):
        scenario = Scenario(
            correct=4,
            byzantine=1,
            protocol_factory=lambda n, i: InstantDecider(0),
        )
        with pytest.raises(ConfigurationError):
            scenario.validate()

    def test_resiliency_enforced_by_default(self):
        scenario = Scenario(
            correct=3,
            byzantine=1,  # n=4 > 3 ok; use 2 to violate
            protocol_factory=lambda n, i: InstantDecider(0),
            strategy_factory=lambda n, i: Silent(),
        )
        scenario.validate()  # n=4, f=1: fine
        bad = Scenario(
            correct=3,
            byzantine=2,  # n=5, 3f=6 >= n
            protocol_factory=lambda n, i: InstantDecider(0),
            strategy_factory=lambda n, i: Silent(),
        )
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_resiliency_override(self):
        bad = Scenario(
            correct=3,
            byzantine=2,
            protocol_factory=lambda n, i: InstantDecider(0),
            strategy_factory=lambda n, i: Silent(),
            enforce_resiliency=False,
        )
        bad.validate()  # no exception


class TestRunScenario:
    def test_ids_are_sparse_and_disjoint(self):
        result = run_scenario(
            Scenario(
                correct=5,
                byzantine=1,
                protocol_factory=lambda n, i: InstantDecider(i),
                strategy_factory=lambda n, i: Silent(),
                seed=3,
            )
        )
        all_ids = set(result.correct_ids) | set(result.byzantine_ids)
        assert len(all_ids) == 6
        # sparse: overwhelmingly unlikely to be consecutive
        ordered = sorted(all_ids)
        gaps = [b - a for a, b in zip(ordered, ordered[1:])]
        assert max(gaps) > 1

    def test_deterministic_for_same_seed(self):
        def build():
            return Scenario(
                correct=5,
                protocol_factory=lambda n, i: InstantDecider(i),
                seed=11,
            )

        a, b = run_scenario(build()), run_scenario(build())
        assert a.correct_ids == b.correct_ids
        assert a.outputs == b.outputs

    def test_different_seeds_differ(self):
        def build(seed):
            return Scenario(
                correct=5,
                protocol_factory=lambda n, i: InstantDecider(i),
                seed=seed,
            )

        assert (
            run_scenario(build(1)).correct_ids
            != run_scenario(build(2)).correct_ids
        )

    def test_agreed_property(self):
        result = run_scenario(
            Scenario(
                correct=3,
                protocol_factory=lambda n, i: InstantDecider("v"),
                seed=0,
            )
        )
        assert result.agreed
        assert result.distinct_outputs == {"v"}

    def test_not_agreed_on_conflicting_outputs(self):
        result = run_scenario(
            Scenario(
                correct=3,
                protocol_factory=lambda n, i: InstantDecider(i),
                seed=0,
            )
        )
        assert not result.agreed

    def test_factories_receive_index_and_id(self):
        seen = []

        def factory(node_id, index):
            seen.append((node_id, index))
            return InstantDecider(0)

        result = run_scenario(
            Scenario(correct=3, protocol_factory=factory, seed=0)
        )
        assert [i for _n, i in seen] == [0, 1, 2]
        assert sorted(n for n, _i in seen) == result.correct_ids

    def test_output_of(self):
        result = run_scenario(
            Scenario(
                correct=2,
                protocol_factory=lambda n, i: InstantDecider(i * 10),
                seed=0,
            )
        )
        first = result.correct_ids[0]
        assert result.output_of(first) in (0, 10)
