"""Engine-level tests for scheduled joins and forced leaves."""

from repro.sim.inbox import Inbox
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.node import NodeApi, Protocol


class Recorder(Protocol):
    def __init__(self):
        super().__init__()
        self.heard_by_round = {}

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.heard_by_round[api.round] = sorted(inbox.senders())
        api.broadcast("beat", api.round)


class TestScheduledJoins:
    def test_joiner_activates_at_scheduled_round(self):
        schedule = MembershipSchedule()
        joiner = Recorder()
        schedule.join(3, 99, lambda: joiner)
        net = SyncNetwork(membership=schedule)
        net.add_correct(1, Recorder())
        net.run(5, until_all_halted=False)
        # first active round is 3, whose inbox is empty for the joiner
        assert min(joiner.heard_by_round) == 3
        assert joiner.heard_by_round[3] == []

    def test_joiner_does_not_get_pre_join_messages(self):
        schedule = MembershipSchedule()
        joiner = Recorder()
        schedule.join(4, 99, lambda: joiner)
        net = SyncNetwork(membership=schedule)
        net.add_correct(1, Recorder())
        net.run(6, until_all_halted=False)
        # round-4 inbox holds messages sent at round 3, staged before the
        # joiner existed: it must not see them.
        assert joiner.heard_by_round[4] == []
        # from round 5 it hears round-4 broadcasts
        assert 1 in joiner.heard_by_round[5]

    def test_joiner_messages_reach_existing_nodes(self):
        schedule = MembershipSchedule()
        schedule.join(3, 99, Recorder)
        net = SyncNetwork(membership=schedule)
        veteran = Recorder()
        net.add_correct(1, veteran)
        net.run(5, until_all_halted=False)
        assert 99 in veteran.heard_by_round[4]

    def test_byzantine_join(self):
        class Byz:
            def on_round(self, view):
                from repro.sim.message import Send

                return [Send(dest, "evil", None) for dest in view.all_nodes]

        schedule = MembershipSchedule()
        schedule.join(2, 66, Byz, byzantine=True)
        net = SyncNetwork(membership=schedule)
        veteran = Recorder()
        net.add_correct(1, veteran)
        net.run(4, until_all_halted=False)
        assert 66 in net.byzantine_ids
        assert 66 in veteran.heard_by_round[3]


class TestForcedLeaves:
    def test_scheduled_leave_silences_node(self):
        schedule = MembershipSchedule()
        schedule.leave(3, 2)
        net = SyncNetwork(membership=schedule)
        a, b = Recorder(), Recorder()
        net.add_correct(1, a)
        net.add_correct(2, b)
        net.run(5, until_all_halted=False)
        # b's round-2 broadcast arrives at round 3; b is removed at round
        # 3 so nothing from b arrives at round 4 or later.
        assert 2 in a.heard_by_round[3]
        assert 2 not in a.heard_by_round[4]
        assert 2 not in a.heard_by_round[5]

    def test_left_node_receives_nothing(self):
        schedule = MembershipSchedule()
        schedule.leave(2, 2)
        net = SyncNetwork(membership=schedule)
        a, b = Recorder(), Recorder()
        net.add_correct(1, a)
        net.add_correct(2, b)
        net.run(4, until_all_halted=False)
        assert max(b.heard_by_round, default=1) == 1
