"""Engine-level tests for scheduled joins and forced leaves."""

from repro.sim.inbox import Inbox
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.node import NodeApi, Protocol


class Recorder(Protocol):
    def __init__(self):
        super().__init__()
        self.heard_by_round = {}

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.heard_by_round[api.round] = sorted(inbox.senders())
        api.broadcast("beat", api.round)


class TestScheduledJoins:
    def test_joiner_activates_at_scheduled_round(self):
        schedule = MembershipSchedule()
        joiner = Recorder()
        schedule.join(3, 99, lambda: joiner)
        net = SyncNetwork(membership=schedule)
        net.add_correct(1, Recorder())
        net.run(5, until_all_halted=False)
        # First active round is 3 — and a broadcast reaches every node
        # alive at *delivery* time, so the joiner already receives the
        # round-2 broadcasts in its first inbox.
        assert min(joiner.heard_by_round) == 3
        assert joiner.heard_by_round[3] == [1]

    def test_joiner_receives_previous_round_broadcasts(self):
        schedule = MembershipSchedule()
        joiner = Recorder()
        schedule.join(4, 99, lambda: joiner)
        net = SyncNetwork(membership=schedule)
        net.add_correct(1, Recorder())
        net.run(6, until_all_halted=False)
        # Round-4 inbox holds the round-3 broadcasts.  They were queued
        # before the joiner existed, but broadcast recipients are
        # resolved at delivery time: a join at round r+1 must see the
        # round-r broadcasts (the g <= n_v invariant depends on it).
        assert joiner.heard_by_round[4] == [1]
        assert 1 in joiner.heard_by_round[5]

    def test_joiner_misses_deliveries_before_its_join_round(self):
        schedule = MembershipSchedule()
        joiner = Recorder()
        schedule.join(4, 99, lambda: joiner)
        net = SyncNetwork(membership=schedule)
        net.add_correct(1, Recorder())
        net.run(6, until_all_halted=False)
        # Rounds 1-3 were delivered before the join: the joiner has no
        # inbox for them at all.
        assert min(joiner.heard_by_round) == 4

    def test_joiner_messages_reach_existing_nodes(self):
        schedule = MembershipSchedule()
        schedule.join(3, 99, Recorder)
        net = SyncNetwork(membership=schedule)
        veteran = Recorder()
        net.add_correct(1, veteran)
        net.run(5, until_all_halted=False)
        assert 99 in veteran.heard_by_round[4]

    def test_byzantine_join(self):
        class Byz:
            def on_round(self, view):
                from repro.sim.message import Send

                return [Send(dest, "evil", None) for dest in view.all_nodes]

        schedule = MembershipSchedule()
        schedule.join(2, 66, Byz, byzantine=True)
        net = SyncNetwork(membership=schedule)
        veteran = Recorder()
        net.add_correct(1, veteran)
        net.run(4, until_all_halted=False)
        assert 66 in net.byzantine_ids
        assert 66 in veteran.heard_by_round[3]


class TestForcedLeaves:
    def test_scheduled_leave_silences_node(self):
        schedule = MembershipSchedule()
        schedule.leave(3, 2)
        net = SyncNetwork(membership=schedule)
        a, b = Recorder(), Recorder()
        net.add_correct(1, a)
        net.add_correct(2, b)
        net.run(5, until_all_halted=False)
        # b's round-2 broadcast arrives at round 3; b is removed at round
        # 3 so nothing from b arrives at round 4 or later.
        assert 2 in a.heard_by_round[3]
        assert 2 not in a.heard_by_round[4]
        assert 2 not in a.heard_by_round[5]

    def test_left_node_receives_nothing(self):
        schedule = MembershipSchedule()
        schedule.leave(2, 2)
        net = SyncNetwork(membership=schedule)
        a, b = Recorder(), Recorder()
        net.add_correct(1, a)
        net.add_correct(2, b)
        net.run(4, until_all_halted=False)
        assert max(b.heard_by_round, default=1) == 1
