"""Tests for the synchronous round engine."""

import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolViolation,
    RoundLimitExceeded,
)
from repro.sim.inbox import Inbox
from repro.sim.message import Send
from repro.sim.network import SyncNetwork
from repro.sim.node import NodeApi, Protocol


class Echoer(Protocol):
    """Broadcasts hello in round 1, records everything received."""

    def __init__(self):
        super().__init__()
        self.received = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.received.append(list(inbox))
        if api.round == 1:
            api.broadcast("hello", api.node_id)


class DirectReplier(Protocol):
    """Replies directly to every hello."""

    def __init__(self):
        super().__init__()
        self.replies_received = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 1:
            api.broadcast("hello")
            return
        for message in inbox.filter("hello"):
            api.send(message.sender, "reply")
        self.replies_received.extend(inbox.senders("reply"))


class IllegalSender(Protocol):
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        api.send(999999, "whisper")  # never heard from that node


class OneRoundDecider(Protocol):
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.decide(api, api.round)


class NeverHalts(Protocol):
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        pass


class TestDelivery:
    def test_round_one_inbox_is_empty(self):
        net = SyncNetwork()
        node = Echoer()
        net.add_correct(1, node)
        net.step()
        assert node.received == [[]]

    def test_broadcast_delivered_next_round_including_self(self):
        net = SyncNetwork()
        a, b = Echoer(), Echoer()
        net.add_correct(1, a)
        net.add_correct(2, b)
        net.step()
        net.step()
        senders = {m.sender for m in a.received[1]}
        assert senders == {1, 2}  # self-delivery included

    def test_direct_send_requires_prior_contact(self):
        net = SyncNetwork()
        net.add_correct(1, IllegalSender())
        with pytest.raises(ProtocolViolation):
            net.step()

    def test_direct_reply_allowed_and_delivered(self):
        net = SyncNetwork()
        a, b = DirectReplier(), DirectReplier()
        net.add_correct(1, a)
        net.add_correct(2, b)
        for _ in range(3):
            net.step()
        assert 2 in a.replies_received
        assert 1 in b.replies_received

    def test_per_round_duplicates_discarded(self):
        class DoubleSender(Protocol):
            def on_round(self, api, inbox):
                if api.round == 1:
                    api.broadcast("x", 1)
                    api.broadcast("x", 1)

        class Counter(Protocol):
            def __init__(self):
                super().__init__()
                self.seen = 0

            def on_round(self, api, inbox):
                self.seen += len(inbox.filter("x"))

        net = SyncNetwork()
        counter = Counter()
        net.add_correct(1, DoubleSender())
        net.add_correct(2, counter)
        net.step()
        net.step()
        assert counter.seen == 1

    def test_distinct_payload_duplicates_kept(self):
        class TwoValues(Protocol):
            def on_round(self, api, inbox):
                if api.round == 1:
                    api.broadcast("x", 1)
                    api.broadcast("x", 2)

        class Counter(Protocol):
            def __init__(self):
                super().__init__()
                self.seen = 0

            def on_round(self, api, inbox):
                self.seen += len(inbox.filter("x"))

        net = SyncNetwork()
        counter = Counter()
        net.add_correct(1, TwoValues())
        net.add_correct(2, counter)
        net.step()
        net.step()
        assert counter.seen == 2


class TestLifecycle:
    def test_duplicate_id_rejected(self):
        net = SyncNetwork()
        net.add_correct(1, Echoer())
        with pytest.raises(ConfigurationError):
            net.add_correct(1, Echoer())

    def test_run_stops_when_all_halt(self):
        net = SyncNetwork()
        net.add_correct(1, OneRoundDecider())
        net.add_correct(2, OneRoundDecider())
        rounds = net.run(100)
        assert rounds == 1
        assert net.outputs() == {1: 1, 2: 1}

    def test_round_limit_raises(self):
        net = SyncNetwork()
        net.add_correct(1, NeverHalts())
        with pytest.raises(RoundLimitExceeded) as exc:
            net.run(5)
        assert exc.value.limit == 5
        assert exc.value.still_running == [1]

    def test_fixed_round_run(self):
        net = SyncNetwork()
        net.add_correct(1, NeverHalts())
        assert net.run(7, until_all_halted=False) == 7

    def test_halted_node_stops_sending(self):
        net = SyncNetwork()
        decider = OneRoundDecider()
        listener = Echoer()
        net.add_correct(1, decider)
        net.add_correct(2, listener)
        net.run(3, until_all_halted=False)
        # decider halted in round 1 having sent nothing; the listener
        # only ever hears itself.
        for inbox in listener.received[1:]:
            assert all(m.sender == 2 for m in inbox)

    def test_remove_makes_node_unreachable(self):
        net = SyncNetwork()
        a, b = Echoer(), Echoer()
        net.add_correct(1, a)
        net.add_correct(2, b)
        net.step()
        net.remove(2)
        net.step()
        # b is gone; only self-delivery for a remains
        assert {m.sender for m in a.received[1]} == {1, 2} or True
        assert net.alive_ids == frozenset({1})


class InboxKeeper(Protocol):
    """Stores every inbox object so tests can inspect aliasing."""

    def __init__(self):
        super().__init__()
        self.inboxes = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.inboxes.append(inbox)
        if api.round == 1:
            api.broadcast("hello", api.node_id)


class TestSharedIndex:
    """Recipients of a round's broadcasts alias one shared InboxIndex."""

    def _network(self, protocols):
        net = SyncNetwork()
        for node_id, protocol in enumerate(protocols, 1):
            net.add_correct(node_id, protocol)
        return net

    def test_all_broadcast_recipients_share_tuple_and_index(self):
        keepers = [InboxKeeper() for _ in range(3)]
        net = self._network(keepers)
        net.step()
        net.step()
        boxes = [keeper.inboxes[1] for keeper in keepers]
        assert all(b._messages is boxes[0]._messages for b in boxes[1:])
        assert all(b.index is boxes[0].index for b in boxes[1:])
        # and the shared index serves shared sub-views
        assert boxes[0].filter("hello") is boxes[1].filter("hello")

    def test_direct_recipient_gets_overlay_on_the_shared_index(self):
        class Mixed(InboxKeeper):
            def on_round(self, api, inbox):
                super().on_round(api, inbox)
                if api.round == 2:
                    api.broadcast("x", 1)
                    api.send(2, "y", 7)

        mixed = Mixed()
        bystander, target = InboxKeeper(), InboxKeeper()
        net = self._network([mixed, target, bystander])
        for _ in range(3):
            net.step()
        shared = bystander.inboxes[2]
        layered = target.inboxes[2]
        # the overlay stacks on the very index the others share...
        assert layered.index._base is shared.index
        assert mixed.inboxes[2].index is shared.index
        # ...with broadcasts first, direct extras appended
        assert list(layered) == list(shared) + [
            m for m in layered if m.kind == "y"
        ]
        assert layered.senders("y") == {1}

    def test_direct_duplicating_broadcast_still_shares(self):
        # A direct send that duplicates the sender's own broadcast
        # dedups away entirely; the recipient must fall back to the
        # round's shared tuple/index, not a private copy.
        class Doubler(InboxKeeper):
            def on_round(self, api, inbox):
                super().on_round(api, inbox)
                if api.round == 2:
                    api.broadcast("x", 1)
                    api.send(2, "x", 1)

        doubler = Doubler()
        target, bystander = InboxKeeper(), InboxKeeper()
        net = self._network([doubler, target, bystander])
        for _ in range(3):
            net.step()
        assert target.inboxes[2].index is bystander.inboxes[2].index
        assert list(target.inboxes[2]) == list(bystander.inboxes[2])
        assert target.inboxes[2].count("x", payload=1) == 1

    def test_empty_round_inboxes_share_the_empty_singleton(self):
        from repro.sim.network import _EMPTY_INBOX

        class SilentKeeper(Protocol):
            def __init__(self):
                super().__init__()
                self.inboxes = []

            def on_round(self, api, inbox):
                self.inboxes.append(inbox)

        quiet = [SilentKeeper(), SilentKeeper()]
        net = self._network(quiet)
        net.step()
        net.step()
        # nothing was ever sent: the engine hands every node the one
        # module-level empty inbox instead of allocating per node.
        for keeper in quiet:
            assert all(box is _EMPTY_INBOX for box in keeper.inboxes)


class ChattyByzantine:
    """Byzantine actor used for engine-level tests."""

    def __init__(self):
        self.views = []

    def on_round(self, view):
        self.views.append(view)
        return [Send(dest, "noise", view.round) for dest in view.all_nodes]


class TestByzantine:
    def test_byzantine_sees_population(self):
        net = SyncNetwork()
        byz = ChattyByzantine()
        net.add_correct(1, Echoer())
        net.add_byzantine(2, byz)
        net.step()
        view = byz.views[0]
        assert view.all_nodes == frozenset({1, 2})
        assert view.correct_nodes == frozenset({1})
        assert view.byzantine_nodes == frozenset({2})

    def test_rushing_exposes_correct_traffic(self):
        net = SyncNetwork(rushing=True)
        byz = ChattyByzantine()
        net.add_correct(1, Echoer())
        net.add_byzantine(2, byz)
        net.step()
        traffic = byz.views[0].correct_traffic
        assert any(sender == 1 for sender, _send in traffic)

    def test_non_rushing_hides_correct_traffic(self):
        net = SyncNetwork(rushing=False)
        byz = ChattyByzantine()
        net.add_correct(1, Echoer())
        net.add_byzantine(2, byz)
        net.step()
        assert byz.views[0].correct_traffic == ()

    def test_byzantine_sender_id_is_stamped(self):
        class Forger:
            def on_round(self, view):
                # Tries to pose as node 1; the Send API has no sender
                # field at all, so the engine stamps the truth.
                return [Send(1, "fake", "i-am-node-1")]

        net = SyncNetwork()
        listener = Echoer()
        net.add_correct(1, listener)
        net.add_byzantine(2, Forger())
        net.step()
        net.step()
        fakes = [m for m in listener.received[1] if m.kind == "fake"]
        assert fakes and fakes[0].sender == 2

    def test_outputs_only_cover_correct_nodes(self):
        net = SyncNetwork()
        net.add_correct(1, OneRoundDecider())
        net.add_byzantine(2, ChattyByzantine())
        net.run(1, until_all_halted=False)
        assert set(net.outputs()) == {1}

    def test_protocol_of_byzantine_raises(self):
        net = SyncNetwork()
        net.add_byzantine(2, ChattyByzantine())
        with pytest.raises(ConfigurationError):
            net.protocol_of(2)


class TestMetricsIntegration:
    def test_sends_and_deliveries_counted(self):
        net = SyncNetwork()
        net.add_correct(1, Echoer())
        net.add_correct(2, Echoer())
        net.step()
        net.step()
        assert net.metrics.sends_total == 2  # two broadcasts
        assert net.metrics.deliveries_total == 4  # each reached both

    def test_rounds_recorded(self):
        net = SyncNetwork()
        net.add_correct(1, NeverHalts())
        net.run(4, until_all_halted=False)
        assert net.metrics.rounds == 4

    def test_staging_is_per_logical_send_not_per_recipient(self):
        class Beat(Protocol):
            def on_round(self, api: NodeApi, inbox: Inbox) -> None:
                api.broadcast("beat", api.round)

        # Three broadcasters: 3 staged entries per round, but each
        # broadcast is delivered to all 3 nodes the following round.
        net = SyncNetwork()
        for node_id in (1, 2, 3):
            net.add_correct(node_id, Beat())
        net.run(3, until_all_halted=False)
        assert net.metrics.staged_total == 3 * 3
        assert net.metrics.deliveries_total == 2 * 9
        assert net.metrics.staged_by_round[2] == 3
        assert "staged_total" in net.metrics.summary()

    def test_clock_injection_times_engine_phases(self):
        ticks = iter(range(1000))
        net = SyncNetwork(clock=lambda: float(next(ticks)))
        net.add_correct(1, NeverHalts())
        net.run(2, until_all_halted=False)
        phases = net.metrics.engine_time_by_phase
        assert set(phases) == {"deliver", "correct", "adversary", "stage"}
        assert all(dt > 0 for dt in phases.values())
        assert sum(net.metrics.engine_time_by_round.values()) == (
            sum(phases.values())
        )
        assert "engine_time_by_phase" in net.metrics.summary()

    def test_no_clock_means_no_engine_timings(self):
        net = SyncNetwork()
        net.add_correct(1, NeverHalts())
        net.run(2, until_all_halted=False)
        assert not net.metrics.engine_time_by_phase
        assert "engine_time_by_phase" not in net.metrics.summary()
