"""Byte accounting on the simulator (wire-codec-accurate)."""

from repro.core.consensus import EarlyConsensus
from repro.sim.network import SyncNetwork


def run_consensus(measure_bytes):
    net = SyncNetwork(seed=0, measure_bytes=measure_bytes)
    for node_id in (11, 22, 33, 44):
        net.add_correct(node_id, EarlyConsensus(1))
    net.run(20)
    return net


class TestByteMetrics:
    def test_disabled_by_default(self):
        net = run_consensus(measure_bytes=False)
        assert net.metrics.bytes_total == 0

    def test_enabled_counts_real_frame_sizes(self):
        net = run_consensus(measure_bytes=True)
        assert net.metrics.bytes_total > 0
        # every counted kind has bytes, and per-kind sums to the total
        assert sum(net.metrics.bytes_by_kind.values()) == (
            net.metrics.bytes_total
        )
        # frames are at least the fixed JSON skeleton (~60 bytes)
        assert (
            net.metrics.bytes_total / net.metrics.sends_total > 50
        )

    def test_byte_count_deterministic(self):
        assert (
            run_consensus(True).metrics.bytes_total
            == run_consensus(True).metrics.bytes_total
        )

    def test_summary_includes_bytes_when_measured(self):
        summary = run_consensus(measure_bytes=True).metrics.summary()
        assert summary["bytes_total"] > 0
        assert summary["bytes_by_kind"]
        assert (
            sum(summary["bytes_by_kind"].values()) == summary["bytes_total"]
        )

    def test_summary_omits_bytes_when_not_measured(self):
        summary = run_consensus(measure_bytes=False).metrics.summary()
        assert "bytes_total" not in summary
        assert "bytes_by_kind" not in summary

    def test_unencodable_payload_falls_back_to_repr(self):
        from repro.sim.inbox import Inbox
        from repro.sim.node import NodeApi, Protocol

        class WeirdPayload(Protocol):
            def on_round(self, api: NodeApi, inbox: Inbox) -> None:
                api.broadcast("odd", object())  # not wire-encodable
                self.halt(api)

        net = SyncNetwork(seed=0, measure_bytes=True)
        net.add_correct(1, WeirdPayload())
        net.run(1, until_all_halted=False)
        assert net.metrics.bytes_total > 0
