"""Coverage for small public API conveniences the audit flagged."""

from repro.adversary.simple import crash_factory
from repro.analysis.report import print_table
from repro.asyncsim.engine import AsyncEngine
from repro.asyncsim.naive_consensus import WaitAndMajority
from repro.asyncsim.schedulers import UniformScheduler
from repro.core.consensus import EarlyConsensus


class TestCrashFactory:
    def test_builds_fresh_strategies(self):
        factory = crash_factory(lambda: EarlyConsensus(1), crash_round=4)
        a, b = factory(), factory()
        assert a is not b
        assert a.crash_round == b.crash_round == 4
        assert a._protocol is not b._protocol


class TestPrintTable:
    def test_prints_rendered_table(self, capsys):
        print_table([{"k": 1}], title="T")
        out = capsys.readouterr().out
        assert "## T" in out
        assert "| k |" in out


class TestPeersHeard:
    def test_tracks_distinct_senders(self):
        engine = AsyncEngine(UniformScheduler(1.0))
        nodes = {
            node_id: WaitAndMajority(0, patience=5.0)
            for node_id in (1, 2, 3)
        }
        for node_id, node in nodes.items():
            engine.add_node(node_id, node)
        heard = {}

        class Probe(WaitAndMajority):
            def on_timer(self, ctx, tag):
                heard[ctx.node_id] = ctx.peers_heard
                super().on_timer(ctx, tag)

        engine.add_node(9, Probe(1, patience=5.0))
        engine.run()
        assert heard[9] >= {1, 2, 3}
